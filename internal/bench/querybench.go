package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/geom"
	"github.com/tmerge/tmerge/internal/ingest"
	"github.com/tmerge/tmerge/internal/query"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/track"
	"github.com/tmerge/tmerge/internal/video"
)

// QueryBenchConfig pins one query-latency benchmark: a streaming
// ingestion pass with all four incremental operators subscribed,
// measured against recomputing each batch Answer over MergedTracks()
// at every committed window — the cost the incremental engine exists to
// avoid.
type QueryBenchConfig struct {
	// Dataset names the suite dataset to stream.
	Dataset string
	// Videos truncates the dataset (0 keeps the suite's setting).
	Videos int
	// WindowLen is the ingest window length (positive and even).
	WindowLen int
	// TauMax is the TMerge iteration budget.
	TauMax int
	// K is the candidate proportion.
	K float64

	// CountMinFrames parameterises the Count query.
	CountMinFrames int
	// Region and RegionMinFrames parameterise the Region query.
	Region          geom.Rect
	RegionMinFrames int
	// CoOccurGroupSize and CoOccurMinFrames parameterise the CoOccur
	// query (no class constraint).
	CoOccurGroupSize int
	CoOccurMinFrames int
	// PrecedesMinGap and PrecedesMinOverlap parameterise the Precedes
	// query.
	PrecedesMinGap     int
	PrecedesMinOverlap int

	// Clock reads wall time for the latency measurement. It must be
	// injected by the caller — cmd/benchrunner is on the determinism
	// allowlist, this package is not. Nil disables wall timing (the
	// *_wall_ms fields stay 0); scan counts, delta counts, and the
	// equivalence check are deterministic with or without it.
	Clock func() time.Time
}

// DefaultQueryBench is the pinned configuration benchrunner's
// "querybench" experiment runs: the parallel-bench streaming shape (19
// windows per video) with query thresholds that keep all four answers
// non-trivially populated.
func DefaultQueryBench() QueryBenchConfig {
	return QueryBenchConfig{
		Dataset:            "pathtrack",
		Videos:             2,
		WindowLen:          400,
		TauMax:             4000,
		K:                  DefaultK,
		CountMinFrames:     200,
		Region:             geom.Rect{X: 0, Y: 0, W: 640, H: 720},
		RegionMinFrames:    100,
		CoOccurGroupSize:   2,
		CoOccurMinFrames:   200,
		PrecedesMinGap:     100,
		PrecedesMinOverlap: 50,
	}
}

// QueryBenchRow is one query's result over the whole pass — the NDJSON
// row shape carried in benchrunner -json Record payloads. Everything
// except the wall-time fields is a deterministic function of the
// configuration.
type QueryBenchRow struct {
	Experiment string `json:"experiment"`
	Dataset    string `json:"dataset"`
	Seed       uint64 `json:"seed"`
	Videos     int    `json:"videos"`
	WindowLen  int    `json:"window_len"`
	Query      string `json:"query"`
	// Windows counts the committed windows (= batch recomputations).
	Windows int `json:"windows"`
	// Rows is the final answer cardinality, summed over videos.
	Rows int `json:"rows"`
	// Asserts/Retracts are the operator's cumulative delta counts.
	Asserts  int `json:"asserts"`
	Retracts int `json:"retracts"`
	// IncScans counts the incremental operator's predicate evaluations
	// across the pass; BatchScans the evaluations batch recomputation
	// performs over the same windows (for cooccur this is the candidate
	// prefilter only — a lower bound on the true batch enumeration work).
	IncScans   int `json:"inc_scans"`
	BatchScans int `json:"batch_scans"`
	// Match reports that after the final window the incremental Results
	// were bit-identical to the batch Answer over the merged track set.
	Match bool `json:"match"`
	// Wall-clock latencies, measured only when a Clock is injected:
	// cumulative incremental Apply time vs cumulative per-window batch
	// recompute time (Answer only; the shared MergedTracks rebuild is
	// reported once under batch_merge_wall_ms).
	IncWallMS        float64 `json:"inc_wall_ms,omitempty"`
	BatchWallMS      float64 `json:"batch_wall_ms,omitempty"`
	BatchMergeWallMS float64 `json:"batch_merge_wall_ms,omitempty"`
}

// queryBenchExperiment tags the rows in mixed NDJSON streams.
const queryBenchExperiment = "query_latency"

// timedOp wraps an Incremental operator to accumulate Apply wall time.
type timedOp struct {
	query.Incremental
	clock func() time.Time
	wall  time.Duration
}

func (t *timedOp) Apply(v query.TrackView, changed, removed []video.TrackID) []query.Delta {
	if t.clock == nil {
		return t.Incremental.Apply(v, changed, removed)
	}
	start := t.clock()
	out := t.Incremental.Apply(v, changed, removed)
	t.wall += t.clock().Sub(start)
	return out
}

// RunQueryBench streams every video of the pinned dataset through an
// ingestion session with all four operators subscribed, recomputes each
// batch answer over MergedTracks() at every committed window, and
// returns one row per query kind with the costs of both strategies and
// the final-equivalence verdict.
func (s *Suite) RunQueryBench(cfg QueryBenchConfig) []QueryBenchRow {
	if cfg.Videos > 0 {
		s.VideosPerDataset = cfg.Videos
	}
	ds := s.Dataset(cfg.Dataset)
	tcfg := core.DefaultTMergeConfig(s.Seed)
	if cfg.TauMax > 0 {
		tcfg.TauMax = cfg.TauMax
	}
	countQ := query.CountQuery{MinFrames: cfg.CountMinFrames}
	regionQ := query.RegionQuery{Region: cfg.Region, MinFrames: cfg.RegionMinFrames}
	coQ := query.CoOccurQuery{GroupSize: cfg.CoOccurGroupSize, MinFrames: cfg.CoOccurMinFrames}
	preQ := query.PrecedesQuery{MinGap: cfg.PrecedesMinGap, MinOverlap: cfg.PrecedesMinOverlap}

	rows := make([]QueryBenchRow, 4)
	for i, name := range []string{"count", "region", "cooccur", "precedes"} {
		rows[i] = QueryBenchRow{
			Experiment: queryBenchExperiment,
			Dataset:    cfg.Dataset,
			Seed:       s.Seed,
			Videos:     len(ds.Videos),
			WindowLen:  cfg.WindowLen,
			Query:      name,
			Match:      true,
		}
	}
	var mergeWall time.Duration
	batchWall := make([]time.Duration, 4)

	for _, v := range ds.Videos {
		oracle := reid.NewOracle(s.model, s.newDevice(CPU))
		in, err := ingest.New(track.Tracktor(), oracle, ingest.Config{
			WindowLen: cfg.WindowLen,
			K:         cfg.K,
			Algorithm: core.NewTMerge(tcfg),
		})
		if err != nil {
			panic(err)
		}
		ops := []*timedOp{
			{Incremental: query.NewIncCount(countQ), clock: cfg.Clock},
			{Incremental: query.NewIncRegion(regionQ), clock: cfg.Clock},
			{Incremental: query.NewIncCoOccur(coQ), clock: cfg.Clock},
			{Incremental: query.NewIncPrecedes(preQ), clock: cfg.Clock},
		}
		for i, op := range ops {
			if _, err := in.Subscribe(rows[i].Query, op); err != nil {
				panic(err)
			}
		}

		// The batch side: after every committed window, rebuild the merged
		// track set and re-answer all four queries from scratch.
		recompute := func(res []ingest.WindowResult) {
			for range res {
				var start time.Time
				if cfg.Clock != nil {
					start = cfg.Clock()
				}
				ts := in.MergedTracks()
				if cfg.Clock != nil {
					mergeWall += cfg.Clock().Sub(start)
				}
				n := ts.Len()
				rows[0].BatchScans += n
				rows[1].BatchScans += n
				rows[2].BatchScans += n
				rows[3].BatchScans += n * (n - 1)
				answers := []func(){
					func() { countQ.Answer(ts) },
					func() { regionQ.Answer(ts) },
					func() { coQ.Answer(ts) },
					func() { preQ.Answer(ts) },
				}
				for i, answer := range answers {
					rows[i].Windows++
					if cfg.Clock == nil {
						answer()
						continue
					}
					start := cfg.Clock()
					answer()
					batchWall[i] += cfg.Clock().Sub(start)
				}
			}
		}
		for _, dets := range v.Detections {
			recompute(in.Push(dets))
		}
		recompute(in.Close())

		// Final equivalence: the incremental result set must be
		// bit-identical to the batch answer over the merged tracks.
		ts := in.MergedTracks()
		finals := [][][]video.TrackID{
			idRows(countQ.Answer(ts)),
			idRows(regionQ.Answer(ts)),
			groupRows(coQ.Answer(ts)),
			pairRows(preQ.Answer(ts)),
		}
		for i, op := range ops {
			got := op.Results()
			rows[i].Rows += len(got)
			if !sameRows(got, finals[i]) {
				rows[i].Match = false
			}
			st := op.Stats()
			rows[i].IncScans += st.Scanned
			rows[i].Asserts += st.Asserted
			rows[i].Retracts += st.Retracted
			rows[i].IncWallMS += float64(op.wall) / float64(time.Millisecond)
		}
	}
	if cfg.Clock != nil {
		for i := range rows {
			rows[i].BatchWallMS = float64(batchWall[i]) / float64(time.Millisecond)
			rows[i].BatchMergeWallMS = float64(mergeWall) / float64(time.Millisecond)
		}
	}
	return rows
}

// QueryBench runs RunQueryBench and prints the human table.
func (s *Suite) QueryBench(w io.Writer, cfg QueryBenchConfig) []QueryBenchRow {
	rows := s.RunQueryBench(cfg)
	fmt.Fprintf(w, "Incremental query engine vs per-window batch recompute — %s, %d video(s), L=%d\n",
		cfg.Dataset, rows[0].Videos, cfg.WindowLen)
	fmt.Fprintf(w, "%-10s %8s %6s %8s %9s %10s %12s %6s %12s %12s\n",
		"query", "windows", "rows", "asserts", "retracts", "inc_scans", "batch_scans", "match", "inc_ms", "batch_ms")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8d %6d %8d %9d %10d %12d %6v %12.2f %12.2f\n",
			r.Query, r.Windows, r.Rows, r.Asserts, r.Retracts, r.IncScans, r.BatchScans, r.Match, r.IncWallMS, r.BatchWallMS)
	}
	return rows
}

// idRows converts a sorted ID answer into result-row shape.
func idRows(ids []video.TrackID) [][]video.TrackID {
	out := make([][]video.TrackID, len(ids))
	for i, id := range ids {
		out[i] = []video.TrackID{id}
	}
	return out
}

// groupRows converts a sorted group answer into result-row shape.
func groupRows(groups []query.Group) [][]video.TrackID {
	out := make([][]video.TrackID, len(groups))
	for i, g := range groups {
		out[i] = []video.TrackID(g)
	}
	return out
}

// pairRows converts a sorted pair answer into result-row shape.
func pairRows(pairs []query.OrderedPair) [][]video.TrackID {
	out := make([][]video.TrackID, len(pairs))
	for i, p := range pairs {
		out[i] = []video.TrackID{p.First, p.Second}
	}
	return out
}

// sameRows compares two row sets element-wise.
func sameRows(a, b [][]video.TrackID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}
