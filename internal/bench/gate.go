package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Gate statuses.
const (
	// GateOK: the gate ran and passed.
	GateOK = "ok"
	// GateSkipped: the gate did not run; Reason says why. A skip is an
	// explicit, machine-readable event — a gate silently absent from the
	// output is indistinguishable from one that never existed, which is
	// how the wall-speedup gate went dark on small CI runners.
	GateSkipped = "skipped"
	// GateFailed: the gate ran and failed.
	GateFailed = "failed"
)

// gateStatusExperiment tags GateStatus rows in mixed NDJSON streams.
const gateStatusExperiment = "gate_status"

// GateStatus is one CI-gate decision, NDJSON-encoded alongside the
// benchmark rows it gates so the bench artifact is self-describing:
// every gate that could have run appears exactly once, as ok, skipped
// (with the machine condition that forced the skip), or failed.
type GateStatus struct {
	Experiment string `json:"experiment"`
	// Gate names the gate, e.g. "parallel_windows_wall_speedup".
	Gate string `json:"gate"`
	// Status is GateOK, GateSkipped, or GateFailed.
	Status string `json:"status"`
	// Reason is human-readable context: why a skip happened, what a
	// failure measured.
	Reason string `json:"reason,omitempty"`
	// NumCPU records the runner's CPU count — the condition the
	// wall-speedup gate skips on.
	NumCPU int `json:"num_cpu"`
	// Workers is the worker count the gate examined (0 when the gate is
	// not about a specific worker count).
	Workers int `json:"workers,omitempty"`
	// Speedup is the measured wall-clock speedup the gate judged, and
	// MinSpeedup the enforced threshold — recorded even on skip and
	// failure so the artifact states what was (or would have been)
	// required, not just the verdict.
	Speedup    float64 `json:"speedup,omitempty"`
	MinSpeedup float64 `json:"min_speedup,omitempty"`
}

// NewGateStatus builds a row with the experiment tag set.
func NewGateStatus(gate, status, reason string, numCPU int) GateStatus {
	return GateStatus{Experiment: gateStatusExperiment, Gate: gate, Status: status, Reason: reason, NumCPU: numCPU}
}

// WriteGateStatuses appends rows as line-delimited JSON.
func WriteGateStatuses(w io.Writer, rows []GateStatus) error {
	enc := json.NewEncoder(w)
	for _, r := range rows {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// DecodeGateStatuses reads GateStatus rows from a mixed NDJSON stream
// (blank lines and rows of other experiments are skipped).
func DecodeGateStatuses(r io.Reader) ([]GateStatus, error) {
	var out []GateStatus
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var row GateStatus
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			return nil, fmt.Errorf("bench: decoding row %q: %w", line, err)
		}
		if row.Experiment != gateStatusExperiment {
			continue
		}
		out = append(out, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
