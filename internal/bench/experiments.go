package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/dataset"
	"github.com/tmerge/tmerge/internal/motmetrics"
	"github.com/tmerge/tmerge/internal/query"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/stats"
	"github.com/tmerge/tmerge/internal/synth"
	"github.com/tmerge/tmerge/internal/track"
	"github.com/tmerge/tmerge/internal/video"
)

// Fig4Row is one video-length point of the baseline scaling experiment.
type Fig4Row struct {
	Frames  int
	Pairs   int           // track pairs accumulated over all windows
	Runtime time.Duration // modeled baseline runtime
}

// Fig4 regenerates Figure 4: exhaustive-baseline runtime and the number of
// accumulated track pairs as PathTrack-style video length grows, window
// size 2000.
func (s *Suite) Fig4(w io.Writer) []Fig4Row {
	lengths := []int{2000, 4000, 6000, 8000}
	tr := defaultTracker()
	profile := dataset.PathTrackLike(s.Seed + 4)
	var rows []Fig4Row
	for li, n := range lengths {
		cfg := profile.Template
		cfg.NumFrames = n
		cfg.Seed = profile.Template.Seed + uint64(li)*7919
		cfg.Name = fmt.Sprintf("fig4-%d", n)
		v, err := synth.Generate(cfg)
		if err != nil {
			panic(err)
		}
		ts := tr.Track(v.Detections)
		oracle := reid.NewOracle(s.model, s.newDevice(CPU))
		res := core.RunPipeline(ts, v.NumFrames, oracle, core.PipelineConfig{
			WindowLen: 2000,
			K:         DefaultK,
			Algorithm: core.NewBaseline(),
		})
		pairs := 0
		for _, wr := range res.Windows {
			pairs += wr.Pairs
		}
		rows = append(rows, Fig4Row{Frames: n, Pairs: pairs, Runtime: res.Virtual})
	}
	t := &Table{
		Title:  "Figure 4: baseline runtime and accumulated track pairs vs video length (L=2000)",
		Header: []string{"frames", "track pairs", "runtime (s)"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprint(r.Frames), fmt.Sprint(r.Pairs), f1(r.Runtime.Seconds()))
	}
	t.AddNote("paper shape: runtime and pair count grow superlinearly and synchronously with length")
	t.Fprint(w)
	return rows
}

// Fig7Row is one τmax point of the TMerge-B convergence experiment.
type Fig7Row struct {
	TauMax  int
	REC     float64
	Runtime time.Duration
}

// Fig7 regenerates Figure 7: TMerge-B (B=10) runtime and REC as τmax
// grows, on MOT-17, with the BL-B total runtime as the reference line.
func (s *Suite) Fig7(w io.Writer) ([]Fig7Row, time.Duration) {
	taus := []int{500, 1000, 2000, 5000, 10000, 20000, 40000}
	tr := defaultTracker()
	var rows []Fig7Row
	for _, tau := range taus {
		tau := tau
		r := s.RunTrials("mot17", tr, func(trial int) core.Algorithm {
			cfg := core.DefaultTMergeConfig(s.Seed + 7 + uint64(trial)*977)
			cfg.TauMax = tau
			cfg.Batch = 10
			return core.NewTMerge(cfg)
		}, Accel, DefaultK)
		rows = append(rows, Fig7Row{TauMax: tau, REC: r.REC, Runtime: r.Virtual})
	}
	blb := s.Run("mot17", tr, core.NewBaselineB(10), Accel, DefaultK)

	t := &Table{
		Title:  "Figure 7: TMerge-B (B=10) runtime and REC vs tau_max on MOT-17",
		Header: []string{"tau_max", "REC", "runtime (s)"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprint(r.TauMax), f3(r.REC), f2(r.Runtime.Seconds()))
	}
	t.AddNote("BL-B reference: REC=%.3f, runtime=%.1fs", blb.REC, blb.Virtual.Seconds())
	t.AddNote("paper shape: REC saturates; runtime growth slows as the feature cache fills")
	t.Fprint(w)
	return rows, blb.Virtual
}

// Fig8 regenerates the ablation of Figure 8: REC-FPS curves of full
// TMerge, TMerge without BetaInit, and TMerge without ULB, on MOT-17.
func (s *Suite) Fig8(w io.Writer) []Curve {
	tr := defaultTracker()
	variants := []struct {
		name        string
		useBetaInit bool
		useULB      bool
	}{
		{"TMerge", true, true},
		{"TMerge w/o BetaInit", false, true},
		{"TMerge w/o ULB", true, false},
	}
	var curves []Curve
	for _, v := range variants {
		c := Curve{Name: v.name}
		for _, tau := range TauSweep {
			tau := tau
			r := s.RunTrials("mot17", tr, func(trial int) core.Algorithm {
				cfg := core.DefaultTMergeConfig(s.Seed + 8 + uint64(trial)*977)
				cfg.TauMax = tau
				cfg.UseBetaInit = v.useBetaInit
				cfg.UseULB = v.useULB
				return core.NewTMerge(cfg)
			}, CPU, DefaultK)
			c.Points = append(c.Points, Point{Param: float64(tau), FPS: r.FPS, REC: r.REC})
		}
		curves = append(curves, c)
	}
	t := &Table{
		Title:  "Figure 8: ablation of BetaInit and ULB on MOT-17",
		Header: []string{"variant", "tau_max", "FPS", "REC"},
	}
	for _, c := range curves {
		for _, p := range c.Points {
			t.AddRow(c.Name, fmt.Sprint(int(p.Param)), f2(p.FPS), f3(p.REC))
		}
	}
	t.AddNote("paper shape: w/o BetaInit is the worst curve; w/o ULB sits between it and full TMerge")
	t.Fprint(w)
	printRecFPSChart(w, "Figure 8 (chart): ablation REC-FPS", curves)
	return curves
}

// Fig9 regenerates Figure 9: REC of BL and TMerge as the window length L
// varies on PathTrack (Lmax = 1000). Recall here is measured against the
// GLOBAL truth — every polyonymous pair over the whole video — because
// the windowing failure mode the figure demonstrates is exactly that a
// pair whose fragments are separated by more than the window scheme can
// see never enters any window's candidate universe. Per-window recall
// would hide that loss.
func (s *Suite) Fig9(w io.Writer) map[string][]Point {
	ls := []int{1000, 2000, 3000, 4000}
	tr := defaultTracker()
	ds := s.Dataset("pathtrack")

	// Global truth per video: polyonymous pairs over the whole video.
	type gt struct {
		ts    *video.TrackSet
		n     int
		truth map[video.PairKey]bool
	}
	var gts []gt
	for i, v := range ds.Videos {
		ts := s.Tracks("pathtrack", tr, i)
		whole := video.Window{Start: 0, End: video.FrameIndex(v.NumFrames - 1)}
		ps := video.BuildPairSet(whole, ts.Sorted(), nil)
		gts = append(gts, gt{ts: ts, n: v.NumFrames, truth: motmetrics.PolyonymousPairs(ps)})
	}

	out := map[string][]Point{}
	algos := map[string]func(trial int) core.Algorithm{
		"BL": func(int) core.Algorithm { return core.NewBaseline() },
		"TMerge": func(trial int) core.Algorithm {
			// Hold the sampling density constant across L by scaling the
			// budget with |Pc| (SuggestTauMax), as a deployment would.
			cfg := core.DefaultTMergeConfig(s.Seed + 9 + uint64(trial)*977)
			return &adaptiveTau{cfg: cfg}
		},
	}
	for name, mk := range algos {
		trials := s.Trials
		if trials < 1 {
			trials = 3
		}
		if name == "BL" {
			trials = 1 // deterministic
		}
		for _, L := range ls {
			var recSum float64
			n := 0
			for trial := 0; trial < trials; trial++ {
				for _, g := range gts {
					if len(g.truth) == 0 {
						continue
					}
					oracle := reid.NewOracle(s.model, s.newDevice(CPU))
					res := core.RunPipeline(g.ts, g.n, oracle, core.PipelineConfig{
						WindowLen: L,
						K:         DefaultK,
						Algorithm: mk(trial),
					})
					found := 0
					seen := map[video.PairKey]bool{}
					for _, wr := range res.Windows {
						for _, key := range wr.Selected {
							if g.truth[key] && !seen[key] {
								seen[key] = true
								found++
							}
						}
					}
					recSum += float64(found) / float64(len(g.truth))
					n++
				}
			}
			out[name] = append(out[name], Point{Param: float64(L), REC: recSum / float64(n)})
		}
	}
	t := &Table{
		Title:  "Figure 9: global REC vs window length L on PathTrack (Lmax=1000)",
		Header: []string{"L", "BL", "TMerge"},
	}
	for li, L := range ls {
		t.AddRow(fmt.Sprint(L), f3(out["BL"][li].REC), f3(out["TMerge"][li].REC))
	}
	t.AddNote("paper shape: REC dips only at L < 2*Lmax; insensitive for L >= 2*Lmax")
	t.Fprint(w)
	return out
}

// Fig10 regenerates Figure 10: REC-FPS curves of TMerge on MOT-17 for
// several BetaInit thresholds thr_S, including BetaInit disabled.
func (s *Suite) Fig10(w io.Writer) []Curve {
	tr := defaultTracker()
	thrs := []float64{0, 100, 200, 300} // 0 = BetaInit off
	var curves []Curve
	for _, thr := range thrs {
		name := fmt.Sprintf("thr_S=%g", thr)
		if thr == 0 {
			name = "no BetaInit"
		}
		c := Curve{Name: name}
		for _, tau := range TauSweep {
			tau := tau
			r := s.RunTrials("mot17", tr, func(trial int) core.Algorithm {
				cfg := core.DefaultTMergeConfig(s.Seed + 10 + uint64(trial)*977)
				cfg.TauMax = tau
				cfg.ThrS = thr
				cfg.UseBetaInit = thr > 0
				return core.NewTMerge(cfg)
			}, CPU, DefaultK)
			c.Points = append(c.Points, Point{Param: float64(tau), FPS: r.FPS, REC: r.REC})
		}
		curves = append(curves, c)
	}
	t := &Table{
		Title:  "Figure 10: REC-FPS of TMerge varying thr_S on MOT-17",
		Header: []string{"variant", "tau_max", "FPS", "REC"},
	}
	for _, c := range curves {
		for _, p := range c.Points {
			t.AddRow(c.Name, fmt.Sprint(int(p.Param)), f2(p.FPS), f3(p.REC))
		}
	}
	t.AddNote("paper shape: no-BetaInit is the lowest curve; performance is sensitive to thr_S")
	t.Fprint(w)
	printRecFPSChart(w, "Figure 10 (chart): thr_S sweep REC-FPS", curves)
	return curves
}

// Fig11Row reports one tracker's polyonymous rates with and without TMerge.
type Fig11Row struct {
	Tracker      string
	Rate         float64 // |P*c| / |Pc|
	ResidualRate float64 // |P*c \ selected| / |Pc|
}

// Fig11 regenerates Figure 11: the Polyonymous Rate of SORT, DeepSORT, and
// Tracktor on MOT-17 with and without TMerge.
func (s *Suite) Fig11(w io.Writer) []Fig11Row {
	trackers := []track.Tracker{track.SORT(), track.CenterTrack(), track.DeepSORT(), track.UMA(), track.Tracktor()}
	ds := s.Dataset("mot17")
	var rows []Fig11Row
	for _, tr := range trackers {
		totalPairs, totalPoly, totalResidual := 0, 0, 0
		for i, v := range ds.Videos {
			ts := s.Tracks("mot17", tr, i)
			for _, ps := range s.pairSets(ts, v.NumFrames, ds.WindowLen) {
				truth := motmetrics.PolyonymousPairs(ps)
				oracle := reid.NewOracle(s.model, s.newDevice(CPU))
				tm := core.NewTMerge(core.DefaultTMergeConfig(s.Seed + 11))
				selected := tm.Select(ps, oracle, DefaultK)
				residual := len(truth)
				for _, k := range selected {
					if truth[k] {
						residual--
					}
				}
				totalPairs += ps.Len()
				totalPoly += len(truth)
				totalResidual += residual
			}
		}
		row := Fig11Row{Tracker: tr.Name()}
		if totalPairs > 0 {
			row.Rate = float64(totalPoly) / float64(totalPairs)
			row.ResidualRate = float64(totalResidual) / float64(totalPairs)
		}
		rows = append(rows, row)
	}
	t := &Table{
		Title:  "Figure 11: Polyonymous Rate with and without TMerge on MOT-17",
		Header: []string{"tracker", "rate", "rate with TMerge"},
	}
	for _, r := range rows {
		t.AddRow(r.Tracker, fmt.Sprintf("%.3f%%", 100*r.Rate), fmt.Sprintf("%.3f%%", 100*r.ResidualRate))
	}
	t.AddNote("paper compares Tracktor, DeepSORT, UMA; SORT and CenterTrack added for completeness")
	t.AddNote("paper shape: TMerge reduces the rate by >10x; Tracktor fragments least")
	t.Fprint(w)
	return rows
}

// Fig12Result holds the identity metrics before and after merging.
type Fig12Result struct {
	Before, After motmetrics.IdentityMetrics
}

// Fig12 regenerates Figure 12: IDF1/IDP/IDR of Tracktor on MOT-17 with and
// without TMerge (merging the verified candidates).
func (s *Suite) Fig12(w io.Writer) Fig12Result {
	tr := defaultTracker()
	ds := s.Dataset("mot17")
	trials := s.Trials
	if trials < 1 {
		trials = 3
	}
	var sumB, sumA motmetrics.IdentityMetrics
	for trial := 0; trial < trials; trial++ {
		for i, v := range ds.Videos {
			ts := s.Tracks("mot17", tr, i)
			before := motmetrics.Identity(v.GT, ts)
			oracle := reid.NewOracle(s.model, s.newDevice(CPU))
			res := core.RunPipeline(ts, v.NumFrames, oracle, core.PipelineConfig{
				WindowLen: ds.WindowLen,
				K:         DefaultK,
				Algorithm: core.NewTMerge(core.DefaultTMergeConfig(s.Seed + 12 + uint64(trial)*977)),
				Verify:    true,
			})
			after := motmetrics.Identity(v.GT, res.Merged)
			sumB.IDF1 += before.IDF1
			sumB.IDP += before.IDP
			sumB.IDR += before.IDR
			sumA.IDF1 += after.IDF1
			sumA.IDP += after.IDP
			sumA.IDR += after.IDR
		}
	}
	n := float64(len(ds.Videos) * trials)
	out := Fig12Result{
		Before: motmetrics.IdentityMetrics{IDF1: sumB.IDF1 / n, IDP: sumB.IDP / n, IDR: sumB.IDR / n},
		After:  motmetrics.IdentityMetrics{IDF1: sumA.IDF1 / n, IDP: sumA.IDP / n, IDR: sumA.IDR / n},
	}
	t := &Table{
		Title:  "Figure 12: identity metrics of Tracktor on MOT-17 with and without TMerge",
		Header: []string{"metric", "without TMerge", "with TMerge"},
	}
	t.AddRow("IDF1", f3(out.Before.IDF1), f3(out.After.IDF1))
	t.AddRow("IDP", f3(out.Before.IDP), f3(out.After.IDP))
	t.AddRow("IDR", f3(out.Before.IDR), f3(out.After.IDR))
	t.AddNote("paper shape: IDF1 improves by ~5 points; IDP and IDR both improve")
	t.Fprint(w)
	return out
}

// Fig13Result holds the query recalls before and after merging.
type Fig13Result struct {
	CountBefore, CountAfter     float64
	CoOccurBefore, CoOccurAfter float64
}

// Fig13 regenerates Figure 13: recall of the Count and Co-occurring
// Objects queries on MOT-17 with and without TMerge.
func (s *Suite) Fig13(w io.Writer) Fig13Result {
	tr := defaultTracker()
	ds := s.Dataset("mot17")
	countQ := query.CountQuery{MinFrames: 200}
	coQ := query.CoOccurQuery{GroupSize: 3, MinFrames: 50}
	var out Fig13Result
	trials := s.Trials
	if trials < 1 {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		for i, v := range ds.Videos {
			ts := s.Tracks("mot17", tr, i)
			oracle := reid.NewOracle(s.model, s.newDevice(CPU))
			res := core.RunPipeline(ts, v.NumFrames, oracle, core.PipelineConfig{
				WindowLen: ds.WindowLen,
				K:         DefaultK,
				Algorithm: core.NewTMerge(core.DefaultTMergeConfig(s.Seed + 13 + uint64(trial)*977)),
				Verify:    true,
			})
			out.CountBefore += countQ.Recall(v.GT, ts)
			out.CountAfter += countQ.Recall(v.GT, res.Merged)
			out.CoOccurBefore += coQ.Recall(v.GT, ts)
			out.CoOccurAfter += coQ.Recall(v.GT, res.Merged)
		}
	}
	n := float64(len(ds.Videos) * trials)
	out.CountBefore /= n
	out.CountAfter /= n
	out.CoOccurBefore /= n
	out.CoOccurAfter /= n
	t := &Table{
		Title:  "Figure 13: query recall on MOT-17 with and without TMerge",
		Header: []string{"query", "without TMerge", "with TMerge"},
	}
	t.AddRow("Count (>=200 frames)", f3(out.CountBefore), f3(out.CountAfter))
	t.AddRow("Co-occur (3 objs, >=50 frames)", f3(out.CoOccurBefore), f3(out.CoOccurAfter))
	t.AddNote("paper shape: Count recall <0.75 -> >0.95; Co-occur 0.88 -> 0.95")
	t.Fprint(w)
	return out
}

// PearsonResult holds the correlation coefficients backing BetaInit (§IV-C).
type PearsonResult struct {
	Dataset  string
	Spatial  float64 // corr(score, DisS) — paper reports >= 0.3
	Temporal float64 // corr(score, DisT) — paper reports < 0.1
}

// Pearson regenerates the §IV-C measurement: the Pearson correlation
// between exact track-pair scores and the spatial / temporal gap features.
func (s *Suite) Pearson(w io.Writer) []PearsonResult {
	tr := defaultTracker()
	var out []PearsonResult
	for _, dsName := range Datasets {
		ds := s.Dataset(dsName)
		var scores, diss, dist []float64
		for i, v := range ds.Videos {
			ts := s.Tracks(dsName, tr, i)
			for _, ps := range s.pairSets(ts, v.NumFrames, ds.WindowLen) {
				if ps.Len() == 0 {
					continue
				}
				oracle := reid.NewOracle(s.model, s.newDevice(CPU))
				means := oracle.TrackPairMeans(ps.Pairs)
				for pi, p := range ps.Pairs {
					scores = append(scores, means[pi])
					diss = append(diss, p.DisS)
					dist = append(dist, float64(p.DisT))
				}
			}
		}
		out = append(out, PearsonResult{
			Dataset:  dsName,
			Spatial:  stats.Pearson(scores, diss),
			Temporal: stats.Pearson(scores, dist),
		})
	}
	t := &Table{
		Title:  "Section IV-C: Pearson correlation of track-pair score vs gap features",
		Header: []string{"dataset", "corr(score, DisS)", "corr(score, DisT)"},
	}
	for _, r := range out {
		t.AddRow(r.Dataset, f3(r.Spatial), f3(r.Temporal))
	}
	t.AddNote("paper: spatial correlation >= 0.3; temporal < 0.1 (not used by BetaInit)")
	t.Fprint(w)
	return out
}
