package bench

import (
	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/video"
)

// adaptiveTau wraps TMerge with a per-window budget scaled to the pair
// universe (core.SuggestTauMax), holding the sampling density constant
// when an experiment varies the window length and with it |Pc|.
type adaptiveTau struct {
	cfg core.TMergeConfig
}

// Name implements core.Algorithm.
func (a *adaptiveTau) Name() string { return "TMerge" }

// Select implements core.Algorithm.
func (a *adaptiveTau) Select(ps *video.PairSet, oracle *reid.Oracle, K float64) []video.PairKey {
	cfg := a.cfg
	cfg.TauMax = core.SuggestTauMax(ps)
	if cfg.TauMax < 1 {
		cfg.TauMax = 1
	}
	return core.NewTMerge(cfg).Select(ps, oracle, K)
}
