package bench

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/dataset"
	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/ingest"
	"github.com/tmerge/tmerge/internal/ingress"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/serve"
	"github.com/tmerge/tmerge/internal/serve/loadgen"
	"github.com/tmerge/tmerge/internal/track"
	"github.com/tmerge/tmerge/internal/video"
)

// runServeBenchHTTP is the network-transport arm of the serving
// benchmark: the same fleet, manager configuration, and pipelines as
// runServeBenchOnce, but every frame crosses a loopback HTTP hop as an
// NDJSON push through ingress.Client. The deterministic columns
// (windows, frames, fingerprint) must equal the in-process row's; the
// wall columns price the wire.
func runServeBenchHTTP(ctx context.Context, cfg ServeBenchConfig, nStreams int) (ServeBenchResult, error) {
	row := ServeBenchResult{
		Experiment: serveBenchExperiment,
		Transport:  "http",
		Seed:       cfg.Seed,
		Streams:    nStreams,
		WindowLen:  cfg.WindowLen,
		Workers:    cfg.Workers,
	}
	batch := cfg.BatchFrames
	if batch <= 0 {
		batch = 8
	}
	streams, err := loadgen.Generate(loadgen.Config{Seed: cfg.Seed, Streams: nStreams, Frames: cfg.Frames})
	if err != nil {
		return row, err
	}
	seeds := make(map[string]uint64, len(streams))
	for _, s := range streams {
		seeds[s.ID] = s.Seed
	}

	goroutinesBefore := runtime.NumGoroutine()
	var latMu sync.Mutex
	var lats []time.Duration
	srv, err := ingress.NewServer(ingress.ServerConfig{
		Serve: serve.Config{
			Workers:         cfg.Workers,
			TurnFrames:      cfg.TurnFrames,
			DefaultQueueCap: cfg.QueueCap,
			Now:             cfg.Clock,
			OnWindow: func(_ string, _ ingest.WindowResult, lat time.Duration) {
				latMu.Lock()
				lats = append(lats, lat)
				latMu.Unlock()
			},
		},
		Spec: func(id string, _ ingress.RegisterRequest) (serve.StreamSpec, error) {
			seed, ok := seeds[id]
			if !ok {
				return serve.StreamSpec{}, fmt.Errorf("bench: unknown stream %q", id)
			}
			return serve.StreamSpec{
				Ingest: ingest.Config{
					WindowLen: cfg.WindowLen,
					K:         cfg.K,
					Algorithm: core.NewTMerge(serveBenchTMerge(cfg, seed)),
				},
				Pipeline: func() (*track.Engine, *reid.Oracle) {
					model := reid.NewModel(seed^0x5EED, dataset.AppearanceDim)
					return track.Tracktor(), reid.NewOracle(model, device.NewCPU(device.DefaultCPU))
				},
			}, nil
		},
	})
	if err != nil {
		return row, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Shutdown()
		return row, fmt.Errorf("bench: servebench listener: %w", err)
	}
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	serveDone := make(chan struct{})
	go func() { _ = hs.Serve(ln); close(serveDone) }()
	stop := func() {
		srv.Shutdown()
		_ = hs.Close()
		<-serveDone
	}

	transport := &http.Transport{MaxIdleConns: 2 * nStreams, MaxIdleConnsPerHost: 2 * nStreams}
	// The backstop Timeout must outlive the 60s RequestTimeout below —
	// blocking pushes deliberately ride the queue's backpressure.
	hc := &http.Client{Transport: transport, Timeout: 2 * time.Minute}
	defer transport.CloseIdleConnections()

	base := "http://" + ln.Addr().String()
	clients := make([]*ingress.Client, len(streams))
	for i, s := range streams {
		clients[i], err = ingress.NewClient(ingress.ClientConfig{
			BaseURL:        base,
			Stream:         s.ID,
			Seed:           s.Seed,
			HTTPClient:     hc,
			BatchFrames:    batch,
			RequestTimeout: 60 * time.Second, // blocking pushes ride the queue's backpressure
		})
		if err != nil {
			stop()
			return row, err
		}
		if _, err := clients[i].Register(ctx, ingress.RegisterRequest{Seed: s.Seed}); err != nil {
			stop()
			return row, fmt.Errorf("bench: register %s: %w", s.ID, err)
		}
	}

	var start time.Time
	if cfg.Clock != nil {
		start = cfg.Clock()
	}
	var wg sync.WaitGroup
	errCh := make(chan error, nStreams)
	for i, s := range streams {
		i, s := i, s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for f, dets := range s.Video.Detections {
				if err := clients[i].Push(ctx, video.FrameIndex(f), dets); err != nil {
					errCh <- fmt.Errorf("bench: push %s frame %d: %w", s.ID, f, err)
					return
				}
			}
			if err := clients[i].Flush(ctx); err != nil {
				errCh <- fmt.Errorf("bench: flush %s: %w", s.ID, err)
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		stop()
		return row, err
	}

	fp := sha256.New()
	for i, s := range streams {
		fin, err := clients[i].Finish(ctx)
		if err != nil {
			stop()
			return row, fmt.Errorf("bench: finish %s: %w", s.ID, err)
		}
		row.Frames += fin.Frames
		row.Windows += fin.Windows
		row.DegradedWindows += fin.DegradedWindows
		fmt.Fprintln(fp, fin.Fingerprint)
	}
	var wall time.Duration
	if cfg.Clock != nil {
		wall = cfg.Clock().Sub(start)
	}
	stop()
	transport.CloseIdleConnections()
	row.Fingerprint = hex.EncodeToString(fp.Sum(nil))
	row.LeakedGoroutines = leakedGoroutines(goroutinesBefore)

	if wall > 0 {
		row.WallMS = float64(wall) / float64(time.Millisecond)
		row.AggFPS = float64(row.Frames) / wall.Seconds()
	}
	latMu.Lock()
	defer latMu.Unlock()
	if len(lats) > 0 && cfg.Clock != nil {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		row.P50LatencyMS = float64(quantile(lats, 0.50)) / float64(time.Millisecond)
		row.P99LatencyMS = float64(quantile(lats, 0.99)) / float64(time.Millisecond)
	}
	return row, nil
}
