package vecmath

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestVecOps(t *testing.T) {
	v := Vec{1, 2, 3}
	w := Vec{4, 5, 6}
	dst := NewVec(3)
	if got := Add(dst, v, w); got[0] != 5 || got[1] != 7 || got[2] != 9 {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(dst, v, w); got[0] != -3 || got[1] != -3 || got[2] != -3 {
		t.Errorf("Sub = %v", got)
	}
	if got := Scale(dst, 2, v); got[0] != 2 || got[1] != 4 || got[2] != 6 {
		t.Errorf("Scale = %v", got)
	}
	copy(dst, v)
	if got := AXPY(dst, 10, w); got[0] != 41 || got[1] != 52 || got[2] != 63 {
		t.Errorf("AXPY = %v", got)
	}
	if got := Dot(v, w); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	if got := Norm2(Vec{3, 4}); !almostEq(got, 5) {
		t.Errorf("Norm2 = %v", got)
	}
	if got := Dist2(Vec{0, 0}, Vec{3, 4}); !almostEq(got, 5) {
		t.Errorf("Dist2 = %v", got)
	}
}

func TestClone(t *testing.T) {
	v := Vec{1, 2, 3}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone aliases the original")
	}
}

func TestNormalize(t *testing.T) {
	v := Vec{3, 4}
	Normalize(v)
	if !almostEq(Norm2(v), 1) {
		t.Errorf("normalized norm = %v", Norm2(v))
	}
	z := Vec{0, 0}
	Normalize(z)
	if z[0] != 0 || z[1] != 0 {
		t.Error("zero vector must stay zero")
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	Dot(Vec{1}, Vec{1, 2})
}

func TestMat(t *testing.T) {
	m := NewMat(2, 3)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(0, 2, 3)
	m.Set(1, 0, 4)
	m.Set(1, 1, 5)
	m.Set(1, 2, 6)
	if m.At(1, 2) != 6 {
		t.Errorf("At = %v", m.At(1, 2))
	}
	row := m.Row(1)
	if row[0] != 4 || row[1] != 5 || row[2] != 6 {
		t.Errorf("Row = %v", row)
	}
	dst := NewVec(2)
	m.MulVec(dst, Vec{1, 1, 1})
	if dst[0] != 6 || dst[1] != 15 {
		t.Errorf("MulVec = %v", dst)
	}
}

func TestNewMatPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewMat(0, 3)
}

func TestTanh(t *testing.T) {
	v := Vec{0, 1000, -1000}
	Tanh(v)
	if v[0] != 0 || !almostEq(v[1], 1) || !almostEq(v[2], -1) {
		t.Errorf("Tanh = %v", v)
	}
}

// Property: triangle inequality for Dist2.
func TestDist2TriangleInequality(t *testing.T) {
	f := func(a, b, c [4]float64) bool {
		va, vb, vc := Vec(a[:]), Vec(b[:]), Vec(c[:])
		for _, x := range append(append(append([]float64{}, a[:]...), b[:]...), c[:]...) {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip degenerate inputs
			}
		}
		return Dist2(va, vc) <= Dist2(va, vb)+Dist2(vb, vc)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Dot is symmetric and Norm2(v)^2 == Dot(v, v).
func TestDotProperties(t *testing.T) {
	f := func(a, b [6]float64) bool {
		for _, x := range append(append([]float64{}, a[:]...), b[:]...) {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
		}
		va, vb := Vec(a[:]), Vec(b[:])
		if Dot(va, vb) != Dot(vb, va) {
			return false
		}
		n := Norm2(va)
		return almostEqRel(n*n, Dot(va, va))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func almostEqRel(a, b float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= 1e-9*m
}
