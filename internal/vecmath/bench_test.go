package vecmath

import "testing"

func BenchmarkDist2_32(b *testing.B) {
	v := NewVec(32)
	w := NewVec(32)
	for i := range v {
		v[i] = float64(i)
		w[i] = float64(32 - i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dist2(v, w)
	}
}

func BenchmarkMulVec64x32(b *testing.B) {
	m := NewMat(64, 32)
	for i := range m.Data {
		m.Data[i] = float64(i % 7)
	}
	v := NewVec(32)
	dst := NewVec(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(dst, v)
	}
}
