//go:build !race

package vecmath

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
