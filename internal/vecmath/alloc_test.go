package vecmath

import "testing"

// The vector kernels run millions of times per window inside the bandit
// loop; a single allocation per call turns into gigabytes of garbage per
// pass, and the GC work serialises the parallel executor's workers.
// These tests pin the kernels' steady-state allocation count at zero so
// a regression fails the suite instead of quietly eroding the wall
// speedup. testing.AllocsPerRun over-reports under the race detector,
// so the pins skip there (the race job still compiles and runs the file
// for its skip).

func pinAllocs(t *testing.T, name string, max float64, f func()) {
	t.Helper()
	if raceEnabled {
		t.Skip("testing.AllocsPerRun is unreliable under the race detector")
	}
	if got := testing.AllocsPerRun(100, f); got > max {
		t.Errorf("%s: %v allocs/op, want <= %v", name, got, max)
	}
}

func TestKernelAllocs(t *testing.T) {
	v, w, dst := NewVec(32), NewVec(32), NewVec(32)
	m := NewMat(64, 32)
	out := NewVec(64)
	pinAllocs(t, "Dist2", 0, func() { Dist2(v, w) })
	pinAllocs(t, "Dot", 0, func() { Dot(v, w) })
	pinAllocs(t, "Norm2", 0, func() { Norm2(v) })
	pinAllocs(t, "Add", 0, func() { Add(dst, v, w) })
	pinAllocs(t, "Sub", 0, func() { Sub(dst, v, w) })
	pinAllocs(t, "Scale", 0, func() { Scale(dst, 2, v) })
	pinAllocs(t, "AXPY", 0, func() { AXPY(dst, 2, v) })
	pinAllocs(t, "MulVec", 0, func() { m.MulVec(out, v) })
	pinAllocs(t, "Tanh", 0, func() { Tanh(dst) })
}

func TestVecPoolCycleAllocs(t *testing.T) {
	vp := NewVecPool(32)
	h := vp.Get()
	vp.Put(h)
	// A GC sweep mid-measurement may empty the pool and force one real
	// allocation, so the pin tolerates a fractional average instead of
	// demanding an exact zero.
	pinAllocs(t, "VecPool Get/Put", 0.2, func() {
		h := vp.Get()
		vp.Put(h)
	})
}

func BenchmarkVecPoolCycle(b *testing.B) {
	vp := NewVecPool(32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := vp.Get()
		vp.Put(h)
	}
}
