// Package vecmath provides dense float64 vector and matrix operations used
// by the simulated ReID model and the appearance machinery of the trackers.
// The operations are deliberately simple and allocation-conscious: the ReID
// oracle is on the hot path of every algorithm in this repository.
package vecmath

import (
	"fmt"
	"math"
	"sync"
)

// Vec is a dense float64 vector.
type Vec []float64

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a deep copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Add stores v + w into dst and returns dst. dst may alias v or w. All three
// must have the same length.
func Add(dst, v, w Vec) Vec {
	checkLen(len(dst), len(v))
	checkLen(len(v), len(w))
	for i := range v {
		dst[i] = v[i] + w[i]
	}
	return dst
}

// Sub stores v - w into dst and returns dst.
func Sub(dst, v, w Vec) Vec {
	checkLen(len(dst), len(v))
	checkLen(len(v), len(w))
	for i := range v {
		dst[i] = v[i] - w[i]
	}
	return dst
}

// Scale stores s*v into dst and returns dst.
func Scale(dst Vec, s float64, v Vec) Vec {
	checkLen(len(dst), len(v))
	for i := range v {
		dst[i] = s * v[i]
	}
	return dst
}

// AXPY stores dst + s*v into dst and returns dst.
func AXPY(dst Vec, s float64, v Vec) Vec {
	checkLen(len(dst), len(v))
	for i := range v {
		dst[i] += s * v[i]
	}
	return dst
}

// Dot returns the inner product of v and w.
func Dot(v, w Vec) float64 {
	checkLen(len(v), len(w))
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm2 returns the Euclidean (L2) norm of v.
func Norm2(v Vec) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Dist2 returns the Euclidean distance between v and w without allocating.
func Dist2(v, w Vec) float64 {
	checkLen(len(v), len(w))
	var s float64
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Normalize scales v in place to unit L2 norm and returns v. The zero vector
// is left unchanged.
func Normalize(v Vec) Vec {
	n := Norm2(v)
	if n == 0 {
		return v
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
	return v
}

// VecPool is a concurrency-safe free list of fixed-length vectors — the
// reusable scratch buffers of the hot loops (the ReID MLP's hidden
// activations, distance workspaces). Get hands out a vector of the
// pool's length with unspecified contents; callers that fully overwrite
// it (MulVec writes every element) need no clearing. Put recycles a
// vector for a later Get; the caller must not retain it afterwards. A
// vector that escapes into long-lived state (a cache entry, a feature
// store) must simply never be Put back — the pool imposes no tracking.
type VecPool struct {
	n int
	p sync.Pool
}

// NewVecPool returns a pool of length-n vectors.
func NewVecPool(n int) *VecPool {
	if n <= 0 {
		panic(fmt.Sprintf("vecmath: invalid pool vector length %d", n))
	}
	vp := &VecPool{n: n}
	vp.p.New = func() any {
		v := NewVec(n)
		// Pool a pointer to the slice header so Put/Get cycles do not
		// themselves allocate (a bare slice would be boxed on every Put).
		return &v
	}
	return vp
}

// Len returns the length of the pool's vectors.
func (vp *VecPool) Len() int { return vp.n }

// Get returns a pointer to a length-Len vector with unspecified
// contents. Dereference for the working slice and hand the same pointer
// back to Put — the pointer round-trip is what keeps a Get/Put cycle
// allocation-free.
func (vp *VecPool) Get() *Vec { return vp.p.Get().(*Vec) }

// Put recycles a vector obtained from Get. Putting a foreign-length
// vector panics: silently accepting it would hand a wrong-sized buffer
// to a later Get.
func (vp *VecPool) Put(v *Vec) {
	if len(*v) != vp.n {
		panic(fmt.Sprintf("vecmath: Put of length-%d vector into length-%d pool", len(*v), vp.n))
	}
	vp.p.Put(v)
}

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMat returns a zero matrix with the given dimensions.
func NewMat(rows, cols int) *Mat {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("vecmath: invalid matrix dims %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at row i, column j.
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of the i-th row.
func (m *Mat) Row(i int) Vec { return Vec(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// MulVec stores m * v into dst and returns dst. dst must have length
// m.Rows and must not alias v.
func (m *Mat) MulVec(dst, v Vec) Vec {
	checkLen(len(v), m.Cols)
	checkLen(len(dst), m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, x := range row {
			s += x * v[j]
		}
		dst[i] = s
	}
	return dst
}

// Tanh applies the element-wise hyperbolic tangent to v in place and
// returns v. It is the activation function of the simulated ReID MLP.
func Tanh(v Vec) Vec {
	for i, x := range v {
		v[i] = math.Tanh(x)
	}
	return v
}

func checkLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("vecmath: length mismatch %d != %d", a, b))
	}
}
