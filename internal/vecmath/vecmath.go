// Package vecmath provides dense float64 vector and matrix operations used
// by the simulated ReID model and the appearance machinery of the trackers.
// The operations are deliberately simple and allocation-conscious: the ReID
// oracle is on the hot path of every algorithm in this repository.
package vecmath

import (
	"fmt"
	"math"
)

// Vec is a dense float64 vector.
type Vec []float64

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a deep copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Add stores v + w into dst and returns dst. dst may alias v or w. All three
// must have the same length.
func Add(dst, v, w Vec) Vec {
	checkLen(len(dst), len(v))
	checkLen(len(v), len(w))
	for i := range v {
		dst[i] = v[i] + w[i]
	}
	return dst
}

// Sub stores v - w into dst and returns dst.
func Sub(dst, v, w Vec) Vec {
	checkLen(len(dst), len(v))
	checkLen(len(v), len(w))
	for i := range v {
		dst[i] = v[i] - w[i]
	}
	return dst
}

// Scale stores s*v into dst and returns dst.
func Scale(dst Vec, s float64, v Vec) Vec {
	checkLen(len(dst), len(v))
	for i := range v {
		dst[i] = s * v[i]
	}
	return dst
}

// AXPY stores dst + s*v into dst and returns dst.
func AXPY(dst Vec, s float64, v Vec) Vec {
	checkLen(len(dst), len(v))
	for i := range v {
		dst[i] += s * v[i]
	}
	return dst
}

// Dot returns the inner product of v and w.
func Dot(v, w Vec) float64 {
	checkLen(len(v), len(w))
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm2 returns the Euclidean (L2) norm of v.
func Norm2(v Vec) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Dist2 returns the Euclidean distance between v and w without allocating.
func Dist2(v, w Vec) float64 {
	checkLen(len(v), len(w))
	var s float64
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Normalize scales v in place to unit L2 norm and returns v. The zero vector
// is left unchanged.
func Normalize(v Vec) Vec {
	n := Norm2(v)
	if n == 0 {
		return v
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
	return v
}

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMat returns a zero matrix with the given dimensions.
func NewMat(rows, cols int) *Mat {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("vecmath: invalid matrix dims %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at row i, column j.
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of the i-th row.
func (m *Mat) Row(i int) Vec { return Vec(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// MulVec stores m * v into dst and returns dst. dst must have length
// m.Rows and must not alias v.
func (m *Mat) MulVec(dst, v Vec) Vec {
	checkLen(len(v), m.Cols)
	checkLen(len(dst), m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, x := range row {
			s += x * v[j]
		}
		dst[i] = s
	}
	return dst
}

// Tanh applies the element-wise hyperbolic tangent to v in place and
// returns v. It is the activation function of the simulated ReID MLP.
func Tanh(v Vec) Vec {
	for i, x := range v {
		v[i] = math.Tanh(x)
	}
	return v
}

func checkLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("vecmath: length mismatch %d != %d", a, b))
	}
}
