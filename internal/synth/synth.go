// Package synth implements the synthetic scene simulator that stands in
// for real video in this reproduction (see DESIGN.md §2).
//
// A scene contains objects that enter over time, move with noisy constant
// velocity, and leave (or time out after MaxSpan frames, the paper's Lmax
// bound on ground-truth track span). Each object carries a latent
// appearance vector; every detection is a noisy observation of it. Two
// effects suppress detections and therefore fragment downstream trackers,
// exactly as occlusion and glare do in the paper:
//
//   - occlusion: when a nearer object covers more than OcclusionCoverage of
//     a farther object's box, the farther object goes undetected;
//   - glare: transient bright regions suppress detections inside them.
//
// The simulator knows ground truth exactly, so the evaluation code can
// derive the true polyonymous pair sets P*c without manual labelling.
package synth

import (
	"fmt"
	"math"

	"github.com/tmerge/tmerge/internal/geom"
	"github.com/tmerge/tmerge/internal/vecmath"
	"github.com/tmerge/tmerge/internal/video"
	"github.com/tmerge/tmerge/internal/xrand"
)

// Config parameterises a synthetic scene.
type Config struct {
	Seed      uint64
	Name      string
	NumFrames int

	// Scene geometry.
	Width, Height float64

	// Object population dynamics.
	ArrivalRate float64 // expected number of new objects per frame
	MaxObjects  int     // cap on concurrently live objects (0 = no cap)
	MinSpan     int     // minimum object lifetime in frames
	MaxSpan     int     // maximum object lifetime in frames (the paper's Lmax)

	// Kinematics and size.
	SpeedMin, SpeedMax float64 // pixels per frame
	SizeMin, SizeMax   float64 // box side length range
	PosJitter          float64 // per-frame positional noise (pixels)
	// CameraPan is a constant global camera translation per frame
	// (ego-motion, as in KITTI); it shifts every object's apparent
	// position. Zero disables it.
	CameraPan geom.Point
	// CameraShake is per-frame random global jitter (hand-held or
	// vibrating mounts), applied to all objects identically.
	CameraShake float64

	// NumClasses is how many object classes the scene contains (person,
	// vehicle, ...). Values < 2 produce the single-class setting. Each
	// object draws a class at spawn; detections carry it, trackers never
	// associate across classes, and queries may constrain on it.
	NumClasses int

	// Appearance model.
	AppearanceDim   int     // latent/observation dimensionality
	AppearanceNoise float64 // stddev of per-frame observation noise
	// PosAppearanceWeight couples an object's latent appearance to its
	// spawn position: spatially close objects share illumination,
	// background bleed, and camera perspective, so they look more alike.
	// This reproduces the paper's §IV-C observation that track-pair scores
	// correlate with spatial distance (Pearson >= 0.3), the signal
	// BetaInit exploits. 0 disables the coupling.
	PosAppearanceWeight float64
	// AppearanceDrift is the per-frame random-walk step of the object's
	// latent appearance (lighting and pose change along a trajectory).
	// Drift is what makes temporally distant fragments of the same object
	// genuinely hard to match: their mean ReID distance approaches that
	// of similar-looking distinct objects, so high recall requires many
	// samples — the regime in which the paper's REC-K curve tops out near
	// 0.95 rather than 1 (Figure 3). 0 disables drift.
	AppearanceDrift float64
	// OutlierProb is the per-detection probability of a corrupted
	// appearance observation (pose change, partial occlusion, motion
	// blur): the observation is pulled toward one of SharedPoseCount
	// global "pose/background" components and gets OutlierNoise-scale
	// noise on top of the usual AppearanceNoise. Outliers are what make a
	// single BBox-pair distance an unreliable estimate of the track-pair
	// score: same-object samples occasionally look far apart, and —
	// because the pose components are shared across objects — two
	// *different* objects occasionally produce a near-identical pair of
	// crops (a ReID false match). The false-low samples are what defeat
	// small uniform samples (PS at low η) while a bandit simply
	// re-samples and rejects the offending pair.
	OutlierProb  float64
	OutlierNoise float64
	// SharedPoseCount is the number of global pose/background components
	// (default 8 when OutlierProb > 0).
	SharedPoseCount int

	// Failure modes.
	OcclusionCoverage float64 // coverage fraction at which detection drops
	MissProb          float64 // independent per-detection miss probability
	GlareRate         float64 // probability a glare event starts per frame
	GlareDuration     int     // glare event duration in frames
	GlareSize         float64 // glare region side length
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.NumFrames <= 0:
		return fmt.Errorf("synth: NumFrames must be positive, got %d", c.NumFrames)
	case c.Width <= 0 || c.Height <= 0:
		return fmt.Errorf("synth: scene dimensions must be positive, got %gx%g", c.Width, c.Height)
	case c.MinSpan <= 0 || c.MaxSpan < c.MinSpan:
		return fmt.Errorf("synth: invalid span range [%d, %d]", c.MinSpan, c.MaxSpan)
	case c.SpeedMin < 0 || c.SpeedMax < c.SpeedMin:
		return fmt.Errorf("synth: invalid speed range [%g, %g]", c.SpeedMin, c.SpeedMax)
	case c.SizeMin <= 0 || c.SizeMax < c.SizeMin:
		return fmt.Errorf("synth: invalid size range [%g, %g]", c.SizeMin, c.SizeMax)
	case c.AppearanceDim <= 0:
		return fmt.Errorf("synth: AppearanceDim must be positive, got %d", c.AppearanceDim)
	case c.OcclusionCoverage <= 0 || c.OcclusionCoverage > 1:
		return fmt.Errorf("synth: OcclusionCoverage must be in (0, 1], got %g", c.OcclusionCoverage)
	}
	return nil
}

// Video is a generated scene: the per-frame detections a tracker consumes
// and the exact ground truth the evaluator consumes.
type Video struct {
	Name      string
	NumFrames int
	Bounds    geom.Rect
	// Detections[f] holds the detections of frame f, ordered by GT object
	// ID for determinism. Each carries its GTObject for evaluation.
	Detections [][]video.BBox
	// GT holds one ground-truth track per object covering every frame the
	// object is inside the scene, whether or not it was detected.
	GT *video.TrackSet
	// Latents maps each object to its latent appearance vector (used by
	// tests and by the reid calibration).
	Latents map[video.ObjectID]vecmath.Vec
}

// object is the simulator's internal per-object state.
type object struct {
	id     video.ObjectID
	class  video.ClassID
	latent vecmath.Vec
	drift  *xrand.RNG // per-object stream for the appearance random walk
	enter  int        // first frame
	exit   int        // last frame (inclusive)
	depth  float64
	size   float64
	pos    geom.Point
	vel    geom.Point
	gt     []video.BBox
}

type glare struct {
	region geom.Rect
	until  int // last frame (inclusive)
}

// Generate runs the simulation and returns the resulting Video.
func Generate(cfg Config) (*Video, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bounds := geom.Rect{X: 0, Y: 0, W: cfg.Width, H: cfg.Height}
	arrivals := xrand.Derive(cfg.Seed, "arrivals:"+cfg.Name)
	glareRng := xrand.Derive(cfg.Seed, "glare:"+cfg.Name)
	detRng := xrand.Derive(cfg.Seed, "detect:"+cfg.Name)

	var (
		objects []*object
		live    []*object
		glares  []glare
		nextID  video.ObjectID
		nextBox video.BBoxID = 1
	)
	out := &Video{
		Name:       cfg.Name,
		NumFrames:  cfg.NumFrames,
		Bounds:     bounds,
		Detections: make([][]video.BBox, cfg.NumFrames),
		Latents:    make(map[video.ObjectID]vecmath.Vec),
	}

	camRng := xrand.Derive(cfg.Seed, "camera:"+cfg.Name)
	var camera geom.Point
	for f := 0; f < cfg.NumFrames; f++ {
		// Global camera motion: constant pan plus random shake, applied
		// identically to every detection in the frame. The GT registry
		// keeps world coordinates; the tracker sees the camera frame.
		camera = camera.Add(cfg.CameraPan)
		if cfg.CameraShake > 0 {
			camera = camera.Add(geom.Point{
				X: camRng.Gaussian(0, cfg.CameraShake),
				Y: camRng.Gaussian(0, cfg.CameraShake),
			})
		}
		// Spawn new objects (Poisson-ish via Bernoulli splitting).
		expected := cfg.ArrivalRate
		for expected > 0 {
			p := expected
			if p > 1 {
				p = 1
			}
			if arrivals.Bernoulli(p) && (cfg.MaxObjects == 0 || len(live) < cfg.MaxObjects) {
				o := spawnObject(cfg, nextID, f)
				out.Latents[o.id] = o.latent
				objects = append(objects, o)
				live = append(live, o)
				nextID++
			}
			expected--
		}

		// Start/expire glare events.
		if cfg.GlareRate > 0 && glareRng.Bernoulli(cfg.GlareRate) {
			gx := glareRng.Float64() * (cfg.Width - cfg.GlareSize)
			gy := glareRng.Float64() * (cfg.Height - cfg.GlareSize)
			glares = append(glares, glare{
				region: geom.Rect{X: gx, Y: gy, W: cfg.GlareSize, H: cfg.GlareSize},
				until:  f + cfg.GlareDuration - 1,
			})
		}
		activeGlares := glares[:0]
		for _, g := range glares {
			if g.until >= f {
				activeGlares = append(activeGlares, g)
			}
		}
		glares = activeGlares

		// Advance live objects, recording GT boxes and culling exits.
		nextLive := live[:0]
		for _, o := range live {
			if f > o.exit {
				continue
			}
			rect := geom.RectFromCenter(o.pos, o.size, o.size)
			if !bounds.Contains(o.pos) {
				o.exit = f - 1
				continue
			}
			o.gt = append(o.gt, video.BBox{
				Frame:    video.FrameIndex(f),
				Rect:     rect,
				Class:    o.class,
				GTObject: o.id,
			})
			// Appearance random walk (see Config.AppearanceDrift).
			if cfg.AppearanceDrift > 0 {
				for i := range o.latent {
					o.latent[i] += o.drift.Gaussian(0, cfg.AppearanceDrift)
				}
				vecmath.Normalize(o.latent)
			}
			// Kinematic step with jitter.
			o.pos = o.pos.Add(o.vel)
			if cfg.PosJitter > 0 {
				jr := xrand.DeriveN(cfg.Seed, "jitter", int(o.id)*1_000_003+f)
				o.pos = o.pos.Add(geom.Point{
					X: jr.Gaussian(0, cfg.PosJitter),
					Y: jr.Gaussian(0, cfg.PosJitter),
				})
			}
			nextLive = append(nextLive, o)
		}
		live = nextLive

		// Emit detections: occlusion, glare, and random misses suppress.
		var dets []video.BBox
		for _, o := range live {
			if len(o.gt) == 0 || int(o.gt[len(o.gt)-1].Frame) != f {
				continue
			}
			rect := o.gt[len(o.gt)-1].Rect
			if occludedAt(o, live, rect, f, cfg.OcclusionCoverage) {
				continue
			}
			if inGlare(rect, glares) {
				continue
			}
			if cfg.MissProb > 0 && detRng.Bernoulli(cfg.MissProb) {
				continue
			}
			obs := observe(cfg, o, f)
			dets = append(dets, video.BBox{
				ID:       nextBox,
				Frame:    video.FrameIndex(f),
				Rect:     jitterRect(detRng, rect, cfg.PosJitter).Translate(camera),
				Obs:      obs,
				Class:    o.class,
				GTObject: o.id,
			})
			nextBox++
		}
		out.Detections[f] = dets
	}

	// Assemble GT tracks.
	var gtTracks []*video.Track
	for _, o := range objects {
		if len(o.gt) == 0 {
			continue
		}
		gtTracks = append(gtTracks, &video.Track{ID: video.TrackID(o.id), Boxes: o.gt})
	}
	out.GT = video.NewTrackSet(gtTracks)
	return out, nil
}

func spawnObject(cfg Config, id video.ObjectID, frame int) *object {
	r := xrand.DeriveN(cfg.Seed, "object", int(id))
	span := cfg.MinSpan + r.Intn(cfg.MaxSpan-cfg.MinSpan+1)
	size := cfg.SizeMin + r.Float64()*(cfg.SizeMax-cfg.SizeMin)
	speed := cfg.SpeedMin + r.Float64()*(cfg.SpeedMax-cfg.SpeedMin)
	theta := r.Float64() * 2 * math.Pi
	pos := geom.Point{
		X: cfg.Width * (0.1 + 0.8*r.Float64()),
		Y: cfg.Height * (0.1 + 0.8*r.Float64()),
	}
	latent := vecmath.NewVec(cfg.AppearanceDim)
	for i := range latent {
		latent[i] = r.Gaussian(0, 1)
	}
	vecmath.Normalize(latent)
	if w := cfg.PosAppearanceWeight; w > 0 {
		// Blend in a smooth position embedding over the first dimensions
		// (see the PosAppearanceWeight field comment).
		pe := positionEmbedding(cfg.Seed, pos, cfg.Width, cfg.Height, cfg.AppearanceDim)
		for i := range latent {
			latent[i] = (1-w)*latent[i] + w*pe[i]
		}
		vecmath.Normalize(latent)
	}
	class := video.ClassID(0)
	if cfg.NumClasses > 1 {
		class = video.ClassID(r.Intn(cfg.NumClasses))
	}
	return &object{
		id:     id,
		class:  class,
		latent: latent,
		drift:  xrand.DeriveN(cfg.Seed, "drift", int(id)),
		enter:  frame,
		exit:   frame + span - 1,
		depth:  r.Float64(),
		size:   size,
		pos:    pos,
		vel:    geom.Point{X: speed * math.Cos(theta), Y: speed * math.Sin(theta)},
	}
}

// positionEmbedding maps a scene position to a unit vector of the
// appearance dimensionality using random Fourier features: nearby
// positions map to nearby embeddings with a Gaussian-kernel falloff, and
// the per-dimension mean over positions is zero, so the coupling adds no
// global similarity offset between distant objects. The feature
// frequencies and phases are derived from the scene seed.
func positionEmbedding(seed uint64, p geom.Point, w, h float64, dim int) vecmath.Vec {
	const freqScale = 2.0 // radians per normalised scene unit
	r := xrand.Derive(seed, "posembed")
	v := vecmath.NewVec(dim)
	nx := p.X / w
	ny := p.Y / h
	for i := 0; i < dim; i++ {
		wx := r.Gaussian(0, freqScale)
		wy := r.Gaussian(0, freqScale)
		b := r.Float64() * 2 * math.Pi
		v[i] = math.Cos(wx*nx + wy*ny + b)
	}
	return vecmath.Normalize(v)
}

// occludedAt reports whether o's box is covered beyond the threshold by a
// nearer (smaller depth) live object at frame f.
func occludedAt(o *object, live []*object, rect geom.Rect, f int, threshold float64) bool {
	for _, p := range live {
		if p == o || p.depth >= o.depth {
			continue
		}
		if len(p.gt) == 0 || int(p.gt[len(p.gt)-1].Frame) != f {
			continue
		}
		if rect.CoverageBy(p.gt[len(p.gt)-1].Rect) >= threshold {
			return true
		}
	}
	return false
}

func inGlare(rect geom.Rect, glares []glare) bool {
	c := rect.Center()
	for _, g := range glares {
		if g.region.Contains(c) {
			return true
		}
	}
	return false
}

// observe produces the appearance observation for object o at frame f:
// the latent vector plus per-frame Gaussian noise, deterministically keyed
// by (object, frame).
func observe(cfg Config, o *object, f int) vecmath.Vec {
	r := xrand.DeriveN(cfg.Seed, "obs", int(o.id)*1_000_003+f)
	obs := o.latent.Clone()
	sigma := cfg.AppearanceNoise
	if cfg.OutlierProb > 0 && r.Bernoulli(cfg.OutlierProb) {
		// Corrupted crop: the shared pose/background component dominates
		// the object's own appearance (see Config.OutlierProb).
		k := r.Intn(sharedPoseCount(cfg))
		pose := sharedPose(cfg.Seed, k, cfg.AppearanceDim)
		for i := range obs {
			obs[i] = 0.45*obs[i] + 0.9*pose[i]
		}
		vecmath.Normalize(obs)
		sigma += cfg.OutlierNoise
	}
	for i := range obs {
		obs[i] += r.Gaussian(0, sigma)
	}
	return obs
}

func sharedPoseCount(cfg Config) int {
	if cfg.SharedPoseCount > 0 {
		return cfg.SharedPoseCount
	}
	return 8
}

// sharedPose returns the k-th global pose/background component for the
// scene seed, deterministically.
func sharedPose(seed uint64, k, dim int) vecmath.Vec {
	r := xrand.DeriveN(seed, "pose", k)
	v := vecmath.NewVec(dim)
	for i := range v {
		v[i] = r.Gaussian(0, 1)
	}
	return vecmath.Normalize(v)
}

func jitterRect(r *xrand.RNG, rect geom.Rect, jitter float64) geom.Rect {
	if jitter <= 0 {
		return rect
	}
	return rect.Translate(geom.Point{
		X: r.Gaussian(0, jitter/2),
		Y: r.Gaussian(0, jitter/2),
	})
}
