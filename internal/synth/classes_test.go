package synth

import (
	"testing"

	"github.com/tmerge/tmerge/internal/geom"
	"github.com/tmerge/tmerge/internal/track"
	"github.com/tmerge/tmerge/internal/video"
)

func trackerForTest() track.Tracker { return track.Tracktor() }

func TestClassesAssignedAndConsistent(t *testing.T) {
	cfg := testConfig()
	cfg.NumClasses = 3
	v, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every detection's class matches its GT object's class, and with
	// enough objects more than one class appears.
	objClass := map[video.ObjectID]video.ClassID{}
	for _, tr := range v.GT.Tracks() {
		objClass[video.ObjectID(tr.ID)] = tr.Class()
	}
	seen := map[video.ClassID]bool{}
	for _, dets := range v.Detections {
		for _, d := range dets {
			if d.Class < 0 || int(d.Class) >= 3 {
				t.Fatalf("class %d out of range", d.Class)
			}
			if want := objClass[d.GTObject]; d.Class != want {
				t.Fatalf("object %d detected with class %d, GT class %d", d.GTObject, d.Class, want)
			}
			seen[d.Class] = true
		}
	}
	if len(seen) < 2 {
		t.Errorf("only %d classes appeared across the scene", len(seen))
	}
}

func TestSingleClassDefault(t *testing.T) {
	v, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, dets := range v.Detections {
		for _, d := range dets {
			if d.Class != 0 {
				t.Fatalf("single-class scene produced class %d", d.Class)
			}
		}
	}
}

func TestCameraPanShiftsDetections(t *testing.T) {
	cfg := testConfig()
	still, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CameraPan = geom.Point{X: 1.5, Y: 0}
	panned, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Same world (same seeds) viewed through a moving camera: detections
	// at frame f shift by f * pan relative to the static version.
	checked := 0
	for f := 10; f < 200; f += 37 {
		a, b := still.Detections[f], panned.Detections[f]
		if len(a) != len(b) || len(a) == 0 {
			continue
		}
		wantShift := 1.5 * float64(f+1)
		got := b[0].Rect.X - a[0].Rect.X
		if diff := got - wantShift; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("frame %d: shift = %v, want %v", f, got, wantShift)
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no comparable frames")
	}
}

func TestCameraShakeDeterministic(t *testing.T) {
	cfg := testConfig()
	cfg.CameraShake = 2.0
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for f := range a.Detections {
		if len(a.Detections[f]) != len(b.Detections[f]) {
			t.Fatalf("frame %d counts differ", f)
		}
		for i := range a.Detections[f] {
			if a.Detections[f][i].Rect != b.Detections[f][i].Rect {
				t.Fatalf("camera shake not deterministic at frame %d", f)
			}
		}
	}
}

func TestTrackerDoesNotAssociateAcrossClasses(t *testing.T) {
	cfg := testConfig()
	cfg.NumClasses = 4
	v, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Track with the class-gated engine: every emitted track must be
	// class-pure.
	ts := trackerForTest().Track(v.Detections)
	for _, tr := range ts.Tracks() {
		c := tr.Boxes[0].Class
		for _, b := range tr.Boxes {
			if b.Class != c {
				t.Fatalf("track %d mixes classes %d and %d", tr.ID, c, b.Class)
			}
		}
	}
}
