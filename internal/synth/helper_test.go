package synth

import "github.com/tmerge/tmerge/internal/geom"

func pt(x, y float64) geom.Point { return geom.Point{X: x, Y: y} }
