package synth

import (
	"testing"

	"github.com/tmerge/tmerge/internal/vecmath"
	"github.com/tmerge/tmerge/internal/video"
)

func testConfig() Config {
	return Config{
		Seed:                1,
		Name:                "t",
		NumFrames:           300,
		Width:               800,
		Height:              600,
		ArrivalRate:         0.05,
		MaxObjects:          8,
		MinSpan:             40,
		MaxSpan:             150,
		SpeedMin:            0.5,
		SpeedMax:            2,
		SizeMin:             40,
		SizeMax:             80,
		PosJitter:           0.5,
		AppearanceDim:       16,
		AppearanceNoise:     0.08,
		PosAppearanceWeight: 0.3,
		OcclusionCoverage:   0.5,
		MissProb:            0.02,
		GlareRate:           0.01,
		GlareDuration:       25,
		GlareSize:           150,
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.GT.Len() != b.GT.Len() {
		t.Fatalf("GT track counts differ: %d vs %d", a.GT.Len(), b.GT.Len())
	}
	for f := range a.Detections {
		if len(a.Detections[f]) != len(b.Detections[f]) {
			t.Fatalf("frame %d detection counts differ", f)
		}
		for i := range a.Detections[f] {
			da, db := a.Detections[f][i], b.Detections[f][i]
			if da.ID != db.ID || da.Rect != db.Rect || da.GTObject != db.GTObject {
				t.Fatalf("frame %d detection %d differs", f, i)
			}
		}
	}
}

func TestGenerateBasicInvariants(t *testing.T) {
	v, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Detections) != 300 {
		t.Fatalf("detections for %d frames", len(v.Detections))
	}
	if v.GT.Len() == 0 {
		t.Fatal("no GT tracks generated")
	}

	// GT tracks are valid and within the span bound.
	for _, tr := range v.GT.Tracks() {
		if err := tr.Validate(); err != nil {
			t.Errorf("GT track %d: %v", tr.ID, err)
		}
		if tr.Span() > testConfig().MaxSpan {
			t.Errorf("GT track %d span %d exceeds MaxSpan", tr.ID, tr.Span())
		}
		// GT tracks are contiguous: one box per frame of presence.
		if tr.Span() != tr.Len() {
			t.Errorf("GT track %d has gaps: span %d, boxes %d", tr.ID, tr.Span(), tr.Len())
		}
	}

	// Detections carry valid GT labels, unique IDs, and observations.
	seen := map[video.BBoxID]bool{}
	total := 0
	for f, dets := range v.Detections {
		for _, d := range dets {
			total++
			if d.Frame != video.FrameIndex(f) {
				t.Fatalf("detection frame mismatch: %d vs %d", d.Frame, f)
			}
			if d.ID == 0 || seen[d.ID] {
				t.Fatalf("detection ID %d duplicate or zero", d.ID)
			}
			seen[d.ID] = true
			if d.GTObject < 0 {
				t.Fatal("detection without GT label")
			}
			if len(d.Obs) != 16 {
				t.Fatalf("observation dim = %d", len(d.Obs))
			}
			if v.GT.Get(video.TrackID(d.GTObject)) == nil {
				t.Fatalf("detection references unknown object %d", d.GTObject)
			}
		}
	}
	if total == 0 {
		t.Fatal("no detections generated")
	}

	// Detections are a subset of presence: fewer detections than GT boxes
	// (occlusion, glare, misses suppress some).
	if total >= v.GT.TotalBoxes() {
		t.Errorf("detections (%d) should be fewer than GT boxes (%d)", total, v.GT.TotalBoxes())
	}
	// But not degenerately few.
	if float64(total) < 0.5*float64(v.GT.TotalBoxes()) {
		t.Errorf("detections (%d) below half of GT boxes (%d): suppression too aggressive", total, v.GT.TotalBoxes())
	}
}

func TestObservationsReflectIdentity(t *testing.T) {
	v, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Two observations of the same object are closer than observations of
	// different objects, on average.
	type obs struct {
		id video.ObjectID
		v  vecmath.Vec
	}
	var all []obs
	for _, dets := range v.Detections {
		for _, d := range dets {
			all = append(all, obs{d.GTObject, d.Obs})
		}
	}
	var same, diff, nSame, nDiff float64
	for i := 0; i < len(all) && i < 400; i++ {
		for j := i + 1; j < len(all) && j < 400; j++ {
			d := vecmath.Dist2(all[i].v, all[j].v)
			if all[i].id == all[j].id {
				same += d
				nSame++
			} else {
				diff += d
				nDiff++
			}
		}
	}
	if nSame == 0 || nDiff == 0 {
		t.Skip("not enough pairs")
	}
	if same/nSame > 0.5*diff/nDiff {
		t.Errorf("same-object obs distance %.3f not well below diff-object %.3f", same/nSame, diff/nDiff)
	}
}

func TestLatentsRecorded(t *testing.T) {
	v, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range v.GT.Tracks() {
		if _, ok := v.Latents[video.ObjectID(tr.ID)]; !ok {
			t.Errorf("no latent for object %d", tr.ID)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.NumFrames = 0 },
		func(c *Config) { c.Width = 0 },
		func(c *Config) { c.MinSpan = 0 },
		func(c *Config) { c.MaxSpan = c.MinSpan - 1 },
		func(c *Config) { c.SpeedMin = -1 },
		func(c *Config) { c.SpeedMax = c.SpeedMin - 1 },
		func(c *Config) { c.SizeMin = 0 },
		func(c *Config) { c.AppearanceDim = 0 },
		func(c *Config) { c.OcclusionCoverage = 0 },
		func(c *Config) { c.OcclusionCoverage = 1.5 },
	}
	for i, mutate := range bad {
		cfg := testConfig()
		mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestMaxObjectsCap(t *testing.T) {
	cfg := testConfig()
	cfg.ArrivalRate = 5 // try to spawn many per frame
	cfg.MaxObjects = 3
	v, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// At every frame at most MaxObjects objects are present.
	present := map[video.FrameIndex]int{}
	for _, tr := range v.GT.Tracks() {
		for _, b := range tr.Boxes {
			present[b.Frame]++
		}
	}
	for f, n := range present {
		if n > 3 {
			t.Fatalf("frame %d has %d objects, cap is 3", f, n)
		}
	}
}

func TestGlareSuppressesDetections(t *testing.T) {
	cfg := testConfig()
	cfg.GlareRate = 0
	noGlare, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.GlareRate = 0.05
	cfg.GlareSize = 400
	glare, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	count := func(v *Video) int {
		n := 0
		for _, dets := range v.Detections {
			n += len(dets)
		}
		return n
	}
	if count(glare) >= count(noGlare) {
		t.Errorf("glare should suppress detections: %d vs %d", count(glare), count(noGlare))
	}
}

func TestPositionEmbeddingLocality(t *testing.T) {
	cfg := testConfig()
	a := positionEmbedding(cfg.Seed, pt(100, 100), cfg.Width, cfg.Height, 16)
	near := positionEmbedding(cfg.Seed, pt(110, 105), cfg.Width, cfg.Height, 16)
	far := positionEmbedding(cfg.Seed, pt(700, 500), cfg.Width, cfg.Height, 16)
	dNear := vecmath.Dist2(a, near)
	dFar := vecmath.Dist2(a, far)
	if dNear >= dFar {
		t.Errorf("embedding locality violated: near %v >= far %v", dNear, dFar)
	}
}
