package asciichart

import (
	"bytes"
	"strings"
	"testing"
)

func TestAddValidation(t *testing.T) {
	var c Chart
	if err := c.Add("bad", []float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := c.Add("empty", nil, nil); err == nil {
		t.Error("empty series accepted")
	}
	if err := c.Add("ok", []float64{1, 2}, []float64{3, 4}); err != nil {
		t.Errorf("valid series rejected: %v", err)
	}
}

func TestFprintBasics(t *testing.T) {
	c := Chart{Title: "demo", XLabel: "fps", Width: 40, Height: 10}
	if err := c.Add("a", []float64{1, 2, 3}, []float64{1, 4, 9}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("b", []float64{1, 2, 3}, []float64{9, 4, 1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	c.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "legend:", "* a", "o b", "(fps)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Extremes plotted: max y row contains a marker at the right edge.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("markers missing")
	}
}

func TestFprintEmpty(t *testing.T) {
	c := Chart{Title: "none"}
	var buf bytes.Buffer
	c.Fprint(&buf)
	if !strings.Contains(buf.String(), "no series") {
		t.Error("empty chart output wrong")
	}
}

func TestFprintLogX(t *testing.T) {
	c := Chart{Title: "log", LogX: true, Width: 40, Height: 8}
	if err := c.Add("s", []float64{1, 10, 100, 1000}, []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	c.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "log scale") {
		t.Error("log scale label missing")
	}
	// With log-x, the four decade-spaced points should land on roughly
	// evenly spaced columns — the plot row must contain 4 markers.
	if strings.Count(out, "s") == 0 {
		t.Error("legend missing")
	}
}

func TestFprintDegenerateRanges(t *testing.T) {
	// Constant x and y must not divide by zero.
	c := Chart{Width: 20, Height: 5}
	if err := c.Add("const", []float64{5, 5}, []float64{2, 2}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	c.Fprint(&buf) // must not panic
	if buf.Len() == 0 {
		t.Error("no output")
	}
}

func TestMarkersCycle(t *testing.T) {
	var c Chart
	for i := 0; i < 10; i++ {
		if err := c.Add("s", []float64{1}, []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if c.series[0].marker != c.series[8].marker {
		t.Error("markers should cycle after 8 series")
	}
	if c.series[0].marker == c.series[1].marker {
		t.Error("consecutive series share a marker")
	}
}
