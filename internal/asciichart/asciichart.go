// Package asciichart renders small scatter/line charts as text, used by
// the benchmark runner to visualise the paper's REC-FPS and REC-K curves
// directly in the terminal next to the numeric tables.
package asciichart

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name   string
	X, Y   []float64
	marker byte
}

// Chart accumulates series and renders them on a shared grid.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot columns (default 60)
	Height int // plot rows (default 16)
	LogX   bool

	series []Series
}

// markers assigned to series in order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Add appends a series; X and Y must have equal, nonzero length.
func (c *Chart) Add(name string, x, y []float64) error {
	if len(x) != len(y) || len(x) == 0 {
		return fmt.Errorf("asciichart: series %q needs equal nonzero x/y lengths (%d, %d)", name, len(x), len(y))
	}
	s := Series{Name: name, X: append([]float64(nil), x...), Y: append([]float64(nil), y...)}
	s.marker = markers[len(c.series)%len(markers)]
	c.series = append(c.series, s)
	return nil
}

// Fprint renders the chart to w. Series points are plotted on a grid with
// linear (or log-x) scaling; each series connects consecutive points with
// its marker along the x-sorted order.
func (c *Chart) Fprint(w io.Writer) {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 16
	}
	if len(c.series) == 0 {
		fmt.Fprintf(w, "\n%s\n(no series)\n", c.Title)
		return
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		for i := range s.X {
			x := c.tx(s.X[i])
			if x < xmin {
				xmin = x
			}
			if x > xmax {
				xmax = x
			}
			if s.Y[i] < ymin {
				ymin = s.Y[i]
			}
			if s.Y[i] > ymax {
				ymax = s.Y[i]
			}
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, m byte) {
		col := int(math.Round((c.tx(x) - xmin) / (xmax - xmin) * float64(width-1)))
		row := int(math.Round((ymax - y) / (ymax - ymin) * float64(height-1)))
		if col >= 0 && col < width && row >= 0 && row < height {
			grid[row][col] = m
		}
	}
	for _, s := range c.series {
		idx := make([]int, len(s.X))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return s.X[idx[a]] < s.X[idx[b]] })
		for _, i := range idx {
			plot(s.X[i], s.Y[i], s.marker)
		}
	}

	if c.Title != "" {
		fmt.Fprintf(w, "\n%s\n", c.Title)
	}
	for r, line := range grid {
		label := "        "
		if r == 0 {
			label = fmt.Sprintf("%7.3g ", ymax)
		} else if r == height-1 {
			label = fmt.Sprintf("%7.3g ", ymin)
		}
		fmt.Fprintf(w, "%s|%s\n", label, string(line))
	}
	fmt.Fprintf(w, "        +%s\n", strings.Repeat("-", width))
	lo, hi := c.invx(xmin), c.invx(xmax)
	fmt.Fprintf(w, "        %-.4g%s%.4g", lo, strings.Repeat(" ", max(1, width-18)), hi)
	var notes []string
	if c.XLabel != "" {
		notes = append(notes, c.XLabel)
	}
	if c.LogX {
		notes = append(notes, "log scale")
	}
	if len(notes) > 0 {
		fmt.Fprintf(w, "  (%s)", strings.Join(notes, ", "))
	}
	fmt.Fprintln(w)
	var legend []string
	for _, s := range c.series {
		legend = append(legend, fmt.Sprintf("%c %s", s.marker, s.Name))
	}
	fmt.Fprintf(w, "        legend: %s\n", strings.Join(legend, "   "))
}

func (c *Chart) tx(x float64) float64 {
	if c.LogX {
		if x <= 0 {
			return math.Log10(1e-12)
		}
		return math.Log10(x)
	}
	return x
}

func (c *Chart) invx(x float64) float64 {
	if c.LogX {
		return math.Pow(10, x)
	}
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
