package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -4}
	if got := p.Add(q); got != (Point{4, -2}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := q.Norm(); !almostEq(got, 5) {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := p.Dist(Point{4, 6}); !almostEq(got, 5) {
		t.Errorf("Dist = %v, want 5", got)
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{X: 10, Y: 20, W: 30, H: 40}
	if got := r.Center(); got != (Point{25, 40}) {
		t.Errorf("Center = %v", got)
	}
	if got := r.Area(); got != 1200 {
		t.Errorf("Area = %v", got)
	}
	if r.Empty() {
		t.Error("Empty = true for non-empty rect")
	}
	if !(Rect{W: 0, H: 5}).Empty() {
		t.Error("zero-width rect should be empty")
	}
	if (Rect{W: 0, H: 5}).Area() != 0 {
		t.Error("empty rect area must be 0")
	}
	if got := r.MaxX(); got != 40 {
		t.Errorf("MaxX = %v", got)
	}
	if got := r.MaxY(); got != 60 {
		t.Errorf("MaxY = %v", got)
	}
}

func TestRectFromCenter(t *testing.T) {
	r := RectFromCenter(Point{50, 50}, 20, 10)
	if r.X != 40 || r.Y != 45 || r.W != 20 || r.H != 10 {
		t.Errorf("RectFromCenter = %+v", r)
	}
	if got := r.Center(); got != (Point{50, 50}) {
		t.Errorf("Center round-trip = %v", got)
	}
}

func TestIntersect(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 10, 10}
	got := a.Intersect(b)
	if got != (Rect{5, 5, 5, 5}) {
		t.Errorf("Intersect = %+v", got)
	}
	// Disjoint rectangles.
	c := Rect{100, 100, 5, 5}
	if !a.Intersect(c).Empty() {
		t.Error("disjoint intersection must be empty")
	}
	// Touching edges count as empty.
	d := Rect{10, 0, 5, 5}
	if !a.Intersect(d).Empty() {
		t.Error("edge-touching intersection must be empty")
	}
}

func TestUnion(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{20, 20, 10, 10}
	got := a.Union(b)
	if got != (Rect{0, 0, 30, 30}) {
		t.Errorf("Union = %+v", got)
	}
	if got := a.Union(Rect{}); got != a {
		t.Errorf("Union with empty = %+v", got)
	}
	if got := (Rect{}).Union(a); got != a {
		t.Errorf("empty Union a = %+v", got)
	}
}

func TestIoU(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	if got := a.IoU(a); !almostEq(got, 1) {
		t.Errorf("self IoU = %v", got)
	}
	b := Rect{5, 0, 10, 10}
	// intersection 50, union 150.
	if got := a.IoU(b); !almostEq(got, 1.0/3.0) {
		t.Errorf("IoU = %v, want 1/3", got)
	}
	if got := a.IoU(Rect{100, 100, 1, 1}); got != 0 {
		t.Errorf("disjoint IoU = %v", got)
	}
}

func TestCoverageBy(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{0, 0, 10, 5}
	if got := a.CoverageBy(b); !almostEq(got, 0.5) {
		t.Errorf("CoverageBy = %v, want 0.5", got)
	}
	if got := b.CoverageBy(a); !almostEq(got, 1) {
		t.Errorf("CoverageBy = %v, want 1", got)
	}
	if got := (Rect{}).CoverageBy(a); got != 0 {
		t.Errorf("empty CoverageBy = %v", got)
	}
}

func TestContains(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{5, 5}, true},
		{Point{0, 0}, true},
		{Point{10, 10}, true},
		{Point{-1, 5}, false},
		{Point{5, 11}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestClamp(t *testing.T) {
	bounds := Rect{0, 0, 100, 100}
	r := Rect{-10, 50, 30, 60}
	got := r.Clamp(bounds)
	if got != (Rect{0, 50, 20, 50}) {
		t.Errorf("Clamp = %+v", got)
	}
}

// Property: IoU is symmetric and bounded in [0, 1].
func TestIoUProperties(t *testing.T) {
	f := func(x1, y1, w1, h1, x2, y2, w2, h2 uint8) bool {
		a := Rect{float64(x1), float64(y1), float64(w1%50) + 1, float64(h1%50) + 1}
		b := Rect{float64(x2), float64(y2), float64(w2%50) + 1, float64(h2%50) + 1}
		ab, ba := a.IoU(b), b.IoU(a)
		return almostEq(ab, ba) && ab >= 0 && ab <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: intersection is contained in both rectangles (area-wise) and
// union contains both.
func TestIntersectUnionProperties(t *testing.T) {
	f := func(x1, y1, w1, h1, x2, y2, w2, h2 uint8) bool {
		a := Rect{float64(x1), float64(y1), float64(w1%50) + 1, float64(h1%50) + 1}
		b := Rect{float64(x2), float64(y2), float64(w2%50) + 1, float64(h2%50) + 1}
		inter := a.Intersect(b)
		union := a.Union(b)
		return inter.Area() <= a.Area()+1e-9 &&
			inter.Area() <= b.Area()+1e-9 &&
			union.Area() >= a.Area()-1e-9 &&
			union.Area() >= b.Area()-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	got := Rect{1, 2, 3, 4}.String()
	if got != "Rect(1.0,2.0 3.0x4.0)" {
		t.Errorf("String = %q", got)
	}
}
