// Package geom provides 2-D geometric primitives used throughout the
// simulator, trackers, and merging algorithms: points, axis-aligned
// rectangles (bounding boxes), and the standard similarity measures
// computed over them (IoU, center distance).
package geom

import (
	"fmt"
	"math"
)

// Point is a 2-D point in frame coordinates (pixels).
type Point struct {
	X, Y float64
}

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// Norm returns the Euclidean norm of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Rect is an axis-aligned rectangle identified by its top-left corner
// (X, Y) and its width and height. The rectangle is considered empty when
// W <= 0 or H <= 0.
type Rect struct {
	X, Y, W, H float64
}

// RectFromCenter builds a rectangle of the given size centered at c.
func RectFromCenter(c Point, w, h float64) Rect {
	return Rect{X: c.X - w/2, Y: c.Y - h/2, W: w, H: h}
}

// Center returns the center point of the rectangle.
func (r Rect) Center() Point { return Point{r.X + r.W/2, r.Y + r.H/2} }

// Area returns the area of the rectangle; empty rectangles have area 0.
func (r Rect) Area() float64 {
	if r.Empty() {
		return 0
	}
	return r.W * r.H
}

// Empty reports whether the rectangle has no interior.
func (r Rect) Empty() bool { return r.W <= 0 || r.H <= 0 }

// MaxX returns the right edge coordinate.
func (r Rect) MaxX() float64 { return r.X + r.W }

// MaxY returns the bottom edge coordinate.
func (r Rect) MaxY() float64 { return r.Y + r.H }

// Translate returns the rectangle moved by d.
func (r Rect) Translate(d Point) Rect {
	return Rect{X: r.X + d.X, Y: r.Y + d.Y, W: r.W, H: r.H}
}

// Intersect returns the intersection of r and s; the result is empty when
// the rectangles do not overlap.
func (r Rect) Intersect(s Rect) Rect {
	x1 := math.Max(r.X, s.X)
	y1 := math.Max(r.Y, s.Y)
	x2 := math.Min(r.MaxX(), s.MaxX())
	y2 := math.Min(r.MaxY(), s.MaxY())
	if x2 <= x1 || y2 <= y1 {
		return Rect{}
	}
	return Rect{X: x1, Y: y1, W: x2 - x1, H: y2 - y1}
}

// Union returns the smallest rectangle covering both r and s. If one of the
// rectangles is empty the other is returned.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	x1 := math.Min(r.X, s.X)
	y1 := math.Min(r.Y, s.Y)
	x2 := math.Max(r.MaxX(), s.MaxX())
	y2 := math.Max(r.MaxY(), s.MaxY())
	return Rect{X: x1, Y: y1, W: x2 - x1, H: y2 - y1}
}

// IoU returns the intersection-over-union of r and s in [0, 1].
func (r Rect) IoU(s Rect) float64 {
	inter := r.Intersect(s).Area()
	if inter == 0 {
		return 0
	}
	union := r.Area() + s.Area() - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// Contains reports whether the point p lies inside (or on the boundary of) r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X && p.X <= r.MaxX() && p.Y >= r.Y && p.Y <= r.MaxY()
}

// CoverageBy returns the fraction of r's area covered by s, in [0, 1].
// It is the asymmetric occlusion measure used by the scene simulator.
func (r Rect) CoverageBy(s Rect) float64 {
	a := r.Area()
	if a == 0 {
		return 0
	}
	return r.Intersect(s).Area() / a
}

// Clamp returns r clipped to the bounds rectangle. The result may be empty.
func (r Rect) Clamp(bounds Rect) Rect {
	return r.Intersect(bounds)
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("Rect(%.1f,%.1f %.1fx%.1f)", r.X, r.Y, r.W, r.H)
}
