package geom

import "testing"

func BenchmarkIoU(b *testing.B) {
	r1 := Rect{X: 0, Y: 0, W: 50, H: 80}
	r2 := Rect{X: 20, Y: 30, W: 50, H: 80}
	for i := 0; i < b.N; i++ {
		r1.IoU(r2)
	}
}
