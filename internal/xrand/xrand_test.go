package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(123)
	b := New(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce the same stream")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds agreed on %d of 100 draws", same)
	}
}

func TestDeriveStability(t *testing.T) {
	a := Derive(42, "tracker")
	b := Derive(42, "tracker")
	if a.Uint64() != b.Uint64() {
		t.Error("Derive must be stable for the same (seed, label)")
	}
	c := Derive(42, "other")
	d := Derive(42, "tracker")
	if c.Uint64() == d.Uint64() {
		t.Error("different labels must give different streams")
	}
}

func TestDeriveNStability(t *testing.T) {
	if DeriveN(7, "x", 3).Uint64() != DeriveN(7, "x", 3).Uint64() {
		t.Error("DeriveN must be stable")
	}
	if DeriveN(7, "x", 3).Uint64() == DeriveN(7, "x", 4).Uint64() {
		t.Error("different n must give different streams")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(99)
	for i := 0; i < 10000; i++ {
		x := r.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", x)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		x := r.Intn(7)
		if x < 0 || x >= 7 {
			t.Fatalf("Intn(7) = %d", x)
		}
		seen[x] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) covered only %d values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestBernoulliEdges(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliMean(t *testing.T) {
	r := New(77)
	const n = 50000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.02 {
		t.Errorf("Bernoulli(0.3) empirical mean = %v", p)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(31)
	const n = 100000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestGaussian(t *testing.T) {
	r := New(8)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Gaussian(10, 2)
	}
	if got := sum / n; math.Abs(got-10) > 0.05 {
		t.Errorf("Gaussian(10,2) mean = %v", got)
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(2)
	}
	if got := sum / n; math.Abs(got-0.5) > 0.02 {
		t.Errorf("Exp(2) mean = %v, want 0.5", got)
	}
}

func TestGammaMean(t *testing.T) {
	r := New(17)
	for _, shape := range []float64{0.5, 1, 2.5, 7} {
		const n = 60000
		var sum float64
		for i := 0; i < n; i++ {
			sum += r.Gamma(shape)
		}
		got := sum / n
		if math.Abs(got-shape)/shape > 0.05 {
			t.Errorf("Gamma(%v) mean = %v", shape, got)
		}
	}
}

func TestBetaMeanAndRange(t *testing.T) {
	r := New(19)
	for _, sf := range [][2]float64{{1, 1}, {2, 5}, {10, 3}} {
		a, b := sf[0], sf[1]
		const n = 60000
		var sum float64
		for i := 0; i < n; i++ {
			x := r.Beta(a, b)
			if x < 0 || x > 1 {
				t.Fatalf("Beta(%v,%v) out of range: %v", a, b, x)
			}
			sum += x
		}
		want := a / (a + b)
		if got := sum / n; math.Abs(got-want) > 0.01 {
			t.Errorf("Beta(%v,%v) mean = %v, want %v", a, b, got, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		n := 1 + int(seed%50)
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleDeterminism(t *testing.T) {
	mk := func() []int {
		s := []int{0, 1, 2, 3, 4, 5, 6, 7}
		New(4).Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
		return s
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Shuffle must be deterministic for the same seed")
		}
	}
}

func TestGammaPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(1).Gamma(0)
}

func TestExpPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(1).Exp(-1)
}
