// Package xrand provides deterministic, splittable pseudo-random number
// generation for the simulator and the sampling algorithms.
//
// Every stochastic component in this repository draws from an *xrand.RNG
// created from an explicit seed, so dataset generation, tracking, and the
// bandit algorithms are exactly reproducible. Streams can be split
// (derived) by label so that adding randomness in one module does not
// perturb another — a property the experiment harness relies on when
// comparing algorithms on identical inputs.
package xrand

import (
	"math"
)

// RNG is a deterministic pseudo-random generator. The core generator is
// SplitMix64, which has a full 2^64 period per stream and cheap splitting.
// RNG is not safe for concurrent use; derive one stream per goroutine.
type RNG struct {
	state uint64
	// cached second normal from Box-Muller
	hasSpare bool
	spare    float64
}

// New returns an RNG seeded from seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// State is a serialisable snapshot of an RNG's full internal state — the
// SplitMix64 counter plus the cached Box-Muller spare. Restoring it with
// SetState resumes the stream bit-identically, which the checkpoint layer
// relies on for deterministic replay of interrupted ingestion sessions.
type State struct {
	S        uint64  `json:"s"`
	HasSpare bool    `json:"has_spare,omitempty"`
	Spare    float64 `json:"spare,omitempty"`
}

// State returns a snapshot of the generator's state.
func (r *RNG) State() State {
	return State{S: r.state, HasSpare: r.hasSpare, Spare: r.spare}
}

// SetState overwrites the generator's state with a snapshot taken by
// State. The next draws continue exactly where the snapshotted stream
// left off.
func (r *RNG) SetState(st State) {
	r.state = st.S
	r.hasSpare = st.HasSpare
	r.spare = st.Spare
}

// FromState returns a new RNG resuming from the snapshot.
func FromState(st State) *RNG {
	r := &RNG{}
	r.SetState(st)
	return r
}

// golden gamma increment of SplitMix64.
const gamma = 0x9E3779B97F4A7C15

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += gamma
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Split derives a new independent stream from r using a label. Derived
// streams are stable: the same parent seed and label always yield the same
// child stream, regardless of how much the parent has been consumed
// elsewhere — Split hashes the parent's *seed state at creation*, not its
// consumption position, only when used via Deriver. For RNG, Split consumes
// one value from r.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// Derive returns a child RNG deterministically derived from seed and label,
// independent of any consumption. Use it to give each module / object its
// own stable stream.
func Derive(seed uint64, label string) *RNG {
	h := seed ^ 0xcbf29ce484222325
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 0x100000001b3
	}
	// One mixing round so short labels don't correlate.
	h = (h ^ (h >> 33)) * 0xff51afd7ed558ccd
	h = (h ^ (h >> 33)) * 0xc4ceb9fe1a85ec53
	return New(h ^ (h >> 33))
}

// DeriveN is Derive with an integer discriminator, used for per-object and
// per-window streams.
func DeriveN(seed uint64, label string, n int) *RNG {
	child := Derive(seed, label)
	return New(child.Uint64() + uint64(n)*gamma)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit value.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Bernoulli performs a Bernoulli trial with success probability p and
// returns true with probability p. Values outside [0,1] are clamped.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal deviate via Box-Muller, cached in
// pairs for speed.
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// Gaussian returns a normal deviate with the given mean and stddev.
func (r *RNG) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// Exp returns an exponential deviate with the given rate (lambda > 0).
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("xrand: Exp with non-positive rate")
	}
	u := r.Float64()
	// Guard u == 0 (Log(0) = -Inf).
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Gamma returns a Gamma(shape, 1) deviate using the Marsaglia–Tsang method.
// shape must be > 0.
func (r *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("xrand: Gamma with non-positive shape")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a)
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Beta returns a Beta(a, b) deviate. a and b must be > 0.
func (r *RNG) Beta(a, b float64) float64 {
	x := r.Gamma(a)
	y := r.Gamma(b)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher–Yates shuffle of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
