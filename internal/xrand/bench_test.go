package xrand

import "testing"

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkBeta(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Beta(2.5, 7.5)
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.NormFloat64()
	}
}
