package fault

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/tmerge/tmerge/internal/device"
)

func cpuModel() device.CostModel {
	return device.CostModel{PerExtract: 100 * time.Microsecond, PerDistance: time.Microsecond}
}

func TestScheduleCovers(t *testing.T) {
	s := NewSchedule(Outage{From: 2, To: 5}, Outage{From: 9, To: 10})
	want := map[int64]bool{0: false, 1: false, 2: true, 4: true, 5: false, 8: false, 9: true, 10: false}
	for idx, w := range want {
		if got := s.Covers(idx); got != w {
			t.Errorf("Covers(%d) = %v, want %v", idx, got, w)
		}
	}
	var nilSched *Schedule
	if nilSched.Covers(0) {
		t.Error("nil schedule must cover nothing")
	}
}

func TestScheduleValidation(t *testing.T) {
	for _, bad := range []Outage{{From: -1, To: 3}, {From: 5, To: 5}, {From: 6, To: 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSchedule(%+v) should panic", bad)
				}
			}()
			NewSchedule(bad)
		}()
	}
}

func TestFlakyScheduledOutage(t *testing.T) {
	f := NewFlaky(device.NewCPU(cpuModel()), Config{
		Schedule: NewSchedule(Outage{From: 1, To: 3}),
	})
	errs := make([]error, 5)
	for i := range errs {
		errs[i] = f.TrySubmit(1, 0, func(int) {})
	}
	for i, err := range errs {
		inOutage := i >= 1 && i < 3
		if inOutage && !errors.Is(err, ErrOutage) {
			t.Errorf("submission %d: got %v, want ErrOutage", i, err)
		}
		if !inOutage && err != nil {
			t.Errorf("submission %d: unexpected error %v", i, err)
		}
	}
	c := f.Counters()
	if c.Attempts != 5 || c.Outages != 2 || c.Successes != 3 {
		t.Errorf("counters = %+v", c)
	}
	if f.Submissions() != 5 {
		t.Errorf("Submissions = %d, want 5 (failures included)", f.Submissions())
	}
}

func TestFlakyTransientDeterministic(t *testing.T) {
	pattern := func() []bool {
		f := NewFlaky(device.NewCPU(cpuModel()), Config{Seed: 11, TransientRate: 0.3})
		out := make([]bool, 50)
		for i := range out {
			out[i] = f.TrySubmit(1, 0, func(int) {}) != nil
		}
		return out
	}
	a, b := pattern(), pattern()
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("submission %d: failure pattern not reproducible", i)
		}
		if a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Errorf("transient rate 0.3 produced %d/%d failures", fails, len(a))
	}
}

func TestFlakyTransientErrorDoesNotExecute(t *testing.T) {
	// TransientRate 1: every submission fails before running anything.
	f := NewFlaky(device.NewCPU(cpuModel()), Config{TransientRate: 1, FailureLatency: time.Millisecond})
	ran := false
	err := f.TrySubmit(3, 0, func(int) { ran = true })
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("got %v, want ErrTransient", err)
	}
	if ran {
		t.Error("failed submission must not execute work")
	}
	if got := f.Clock().Elapsed(); got != time.Millisecond {
		t.Errorf("failure latency not charged: clock = %v", got)
	}
}

func TestFlakyTimeout(t *testing.T) {
	// 50 extractions at 100µs = 5ms > 1ms deadline.
	f := NewFlaky(device.NewCPU(cpuModel()), Config{Timeout: time.Millisecond})
	err := f.TrySubmit(50, 0, func(int) {})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
	// 5 extractions = 500µs < 1ms: fine.
	if err := f.TrySubmit(5, 0, func(int) {}); err != nil {
		t.Fatalf("under-deadline submission failed: %v", err)
	}
	c := f.Counters()
	if c.Timeouts != 1 || c.Successes != 1 {
		t.Errorf("counters = %+v", c)
	}
}

func TestFlakySpikeChargesLatency(t *testing.T) {
	f := NewFlaky(device.NewCPU(cpuModel()), Config{Seed: 3, SpikeRate: 1, SpikeLatency: 10 * time.Millisecond})
	if err := f.TrySubmit(1, 0, func(int) {}); err != nil {
		t.Fatal(err)
	}
	want := 100*time.Microsecond + 10*time.Millisecond
	if got := f.Clock().Elapsed(); got != want {
		t.Errorf("clock = %v, want %v", got, want)
	}
	if f.Counters().Spikes != 1 {
		t.Errorf("spikes = %d", f.Counters().Spikes)
	}
}

func TestFlakyCrashRestore(t *testing.T) {
	f := NewFlaky(device.NewCPU(cpuModel()), Config{})
	if err := f.TrySubmit(1, 0, func(int) {}); err != nil {
		t.Fatal(err)
	}
	f.Crash()
	if !f.Crashed() {
		t.Error("Crashed() = false after Crash")
	}
	if err := f.TrySubmit(1, 0, func(int) {}); !errors.Is(err, ErrOutage) {
		t.Fatalf("crashed device returned %v, want ErrOutage", err)
	}
	f.Restore()
	if err := f.TrySubmit(1, 0, func(int) {}); err != nil {
		t.Fatalf("restored device failed: %v", err)
	}
}

func TestFlakySubmitPanicsTyped(t *testing.T) {
	f := NewFlaky(device.NewCPU(cpuModel()), Config{TransientRate: 1})
	defer func() {
		u, ok := recover().(*device.Unavailable)
		if !ok {
			t.Fatal("want *device.Unavailable panic")
		}
		if !errors.Is(u, ErrTransient) {
			t.Errorf("panic error %v should wrap ErrTransient", u)
		}
	}()
	f.Submit(1, 0, func(int) {})
}

func TestFlakyConfigValidation(t *testing.T) {
	for _, cfg := range []Config{{TransientRate: -0.1}, {TransientRate: 1.1}, {SpikeRate: 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFlaky(%+v) should panic", cfg)
				}
			}()
			NewFlaky(device.NewCPU(cpuModel()), cfg)
		}()
	}
}

func TestResilientOverFlakyMasksTransients(t *testing.T) {
	// A resilient wrapper over a flaky accelerator: with a 20% transient
	// rate and 5 attempts per submission, a long run of submissions
	// completes without a single surfaced failure, and the retry
	// counters tie out against the injector's.
	flaky := NewFlaky(device.NewAccelerator(cpuModel(), 4), Config{Seed: 5, TransientRate: 0.2})
	d := device.NewResilientDevice(flaky, device.RetryPolicy{MaxAttempts: 5}, device.BreakerConfig{Threshold: 5}, 9)
	for i := 0; i < 200; i++ {
		if err := d.TrySubmit(4, 2, func(int) {}); err != nil {
			t.Fatalf("submission %d surfaced %v", i, err)
		}
	}
	rc, fc := d.Counters(), flaky.Counters()
	if rc.Failures == 0 {
		t.Fatal("no transients injected; test exercised nothing")
	}
	if rc.Failures != fc.Transients {
		t.Errorf("resilient failures %d != injected transients %d", rc.Failures, fc.Transients)
	}
	if rc.Attempts != fc.Attempts {
		t.Errorf("resilient attempts %d != flaky attempts %d", rc.Attempts, fc.Attempts)
	}
	if rc.Retries != rc.Attempts-rc.Submissions {
		t.Errorf("retries %d inconsistent with attempts %d / submissions %d", rc.Retries, rc.Attempts, rc.Submissions)
	}
}

func TestResilientOverFlakyConcurrent(t *testing.T) {
	// The -race target of the issue: concurrent retried submissions
	// through the full resilient → flaky → accelerator stack.
	flaky := NewFlaky(device.NewAccelerator(cpuModel(), 4), Config{Seed: 21, TransientRate: 0.15, SpikeRate: 0.1, SpikeLatency: time.Millisecond})
	d := device.NewResilientDevice(flaky, device.RetryPolicy{MaxAttempts: 6}, device.BreakerConfig{Threshold: 8}, 2)
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 25; k++ {
				out := make([]int, 6)
				if err := d.TrySubmit(6, 3, func(i int) { out[i] = i + 1 }); err != nil {
					errCh <- err
					return
				}
				for i, v := range out {
					if v != i+1 {
						errCh <- errors.New("submission executed partially")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("concurrent submission: %v", err)
	}
}
