package fault

import "fmt"

// Outage is a scripted outage window: every device submission whose
// index (0-based, counted across all attempts, failed ones included)
// falls in the half-open interval [From, To) fails with ErrOutage.
// Indexing by submission attempt rather than wall time keeps scripted
// runs exactly reproducible regardless of retry policy or batch size.
type Outage struct {
	From, To int64
}

// Covers reports whether submission idx falls inside the outage.
func (o Outage) Covers(idx int64) bool { return idx >= o.From && idx < o.To }

// Schedule scripts outage windows for a Flaky device, so tests and
// benchmarks can stage mid-stream failures deterministically.
type Schedule struct {
	Outages []Outage
}

// NewSchedule builds a schedule from outage windows. It panics on an
// empty or negative window (From must be >= 0 and < To).
func NewSchedule(outages ...Outage) *Schedule {
	for _, o := range outages {
		if o.From < 0 || o.To <= o.From {
			panic(fmt.Sprintf("fault: invalid outage window [%d, %d)", o.From, o.To))
		}
	}
	return &Schedule{Outages: outages}
}

// Covers reports whether submission idx falls inside any scheduled
// outage. A nil schedule covers nothing.
func (s *Schedule) Covers(idx int64) bool {
	if s == nil {
		return false
	}
	for _, o := range s.Outages {
		if o.Covers(idx) {
			return true
		}
	}
	return false
}
