package fault

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// echoServer is a minimal TCP backend: every connection is echoed until
// EOF. Returns the address and a stop function.
func echoServer(t *testing.T) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				_, _ = io.Copy(c, c)
			}()
		}
	}()
	return ln.Addr().String(), func() { _ = ln.Close(); wg.Wait() }
}

// roundTrip dials the proxy, writes msg, half-closes, and reads the
// reply until EOF.
func roundTrip(addr string, msg []byte) ([]byte, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Write(msg); err != nil {
		return nil, err
	}
	if t, ok := c.(*net.TCPConn); ok {
		_ = t.CloseWrite()
	}
	return io.ReadAll(c)
}

func TestProxyTransparent(t *testing.T) {
	backend, stop := echoServer(t)
	defer stop()
	p, err := NewProxy("127.0.0.1:0", backend, NetConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	msg := bytes.Repeat([]byte("tmerge"), 100)
	got, err := roundTrip(p.Addr(), msg)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: got %d bytes, want %d", len(got), len(msg))
	}
	if c := p.Counters(); c.Forwarded != 1 || c.Conns != 1 {
		t.Fatalf("counters = %+v, want 1 conn forwarded", c)
	}
}

// TestProxyRetarget pins the restart scenario: the proxy endpoint stays
// stable while the backend behind it is replaced — new connections reach
// the new backend.
func TestProxyRetarget(t *testing.T) {
	a, stopA := echoServer(t)
	p, err := NewProxy("127.0.0.1:0", a, NetConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if got, err := roundTrip(p.Addr(), []byte("one")); err != nil || string(got) != "one" {
		t.Fatalf("via backend a: %q, %v", got, err)
	}
	stopA() // backend "crashes"
	if _, err := roundTrip(p.Addr(), []byte("gone")); err == nil {
		t.Fatal("round trip with dead backend should fail")
	}
	b, stopB := echoServer(t)
	defer stopB()
	p.SetBackend(b)
	if got, err := roundTrip(p.Addr(), []byte("two")); err != nil || string(got) != "two" {
		t.Fatalf("via backend b: %q, %v", got, err)
	}
}

// TestProxyFaultsFire drives enough connections through an aggressive
// fault profile that every fault class provably fires, and checks that
// clean connections still echo correctly — faults corrupt delivery,
// never content.
func TestProxyFaultsFire(t *testing.T) {
	backend, stop := echoServer(t)
	defer stop()
	p, err := NewProxy("127.0.0.1:0", backend, NetConfig{
		Seed:      7,
		DropRate:  0.25,
		StallRate: 0.15, StallFor: 10 * time.Millisecond,
		TruncateRate: 0.25, TruncateAfter: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	msg := bytes.Repeat([]byte("x"), 256) // larger than any truncation budget
	okConns := 0
	for i := 0; i < 60; i++ {
		got, err := roundTrip(p.Addr(), msg)
		if err == nil && bytes.Equal(got, msg) {
			okConns++
		} else if err == nil && len(got) == len(msg) {
			t.Fatalf("conn %d: reply corrupted, not truncated: %q", i, got)
		}
	}
	c := p.Counters()
	if c.Dropped == 0 || c.Stalled == 0 || c.Truncated == 0 {
		t.Fatalf("not every fault class fired: %+v", c)
	}
	if okConns == 0 || c.Forwarded == 0 {
		t.Fatalf("no clean connection survived: ok=%d counters=%+v", okConns, c)
	}
	if c.Conns != 60 {
		t.Fatalf("conns = %d, want 60", c.Conns)
	}
}
