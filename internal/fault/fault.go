// Package fault provides deterministic fault injection for ReID devices.
//
// In production the expensive ReID model runs on remote accelerator
// services that drop requests, stall, and suffer outages. The rest of
// this repository models devices as infallible; this package supplies
// the adversary: Flaky wraps any device.Device and injects transient
// errors, latency spikes, per-submission deadline violations, and
// crash-until-restore outages — all driven by a seeded xrand stream and
// an explicit Schedule, so every failure pattern is exactly
// reproducible. Pair it with device.NewResilientDevice to exercise the
// retry/backoff/circuit-breaker path, and with core.RunPipeline /
// ingest.Ingestor to exercise degraded-mode selection.
package fault

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/xrand"
)

// Error sentinels for the injected failure classes; match with
// errors.Is. All of them are transient from the caller's perspective —
// whether retrying helps depends on the schedule.
var (
	// ErrTransient marks a randomly injected per-submission failure.
	ErrTransient = errors.New("fault: injected transient failure")
	// ErrTimeout marks a submission whose modeled duration exceeded the
	// configured deadline; its work is executed but must be discarded.
	ErrTimeout = errors.New("fault: submission deadline exceeded")
	// ErrOutage marks a submission made during a scheduled outage or
	// after Crash and before Restore.
	ErrOutage = errors.New("fault: device outage")
)

// Config parameterises the injected fault distribution.
type Config struct {
	// Seed drives the transient/spike draws (xrand, deterministic).
	Seed uint64
	// TransientRate is the probability that a submission fails with
	// ErrTransient before executing. Must be in [0, 1].
	TransientRate float64
	// SpikeRate is the probability that a successful submission is
	// charged SpikeLatency of extra virtual time. Must be in [0, 1].
	SpikeRate float64
	// SpikeLatency is the extra virtual latency of a spiked submission.
	SpikeLatency time.Duration
	// FailureLatency is the virtual time charged for each failed
	// submission (a dropped RPC still burns its round trip). Also what
	// lets a time-based breaker cooldown elapse during a dense outage.
	FailureLatency time.Duration
	// Timeout is the per-submission deadline: a submission whose
	// modeled duration (including a spike) exceeds it fails with
	// ErrTimeout after executing. Zero disables the deadline.
	Timeout time.Duration
	// Schedule scripts outage windows by submission index; nil means no
	// scheduled outages.
	Schedule *Schedule
}

// Counters reports what the injector did.
type Counters struct {
	Attempts   int64 // submissions offered to the device
	Successes  int64 // submissions that executed and met the deadline
	Transients int64 // ErrTransient injections
	Timeouts   int64 // ErrTimeout injections
	Outages    int64 // ErrOutage rejections (scheduled or crashed)
	Spikes     int64 // latency spikes charged
}

// Flaky is a fault-injecting device wrapper. It implements
// device.Fallible; its infallible Submit panics with *device.Unavailable
// on an injected failure, like every fallible device. Flaky is safe for
// concurrent use.
type Flaky struct {
	mu      sync.Mutex
	inner   device.Fallible
	cfg     Config
	rng     *xrand.RNG
	next    int64 // submission index, schedule cursor
	crashed bool
	c       Counters
}

// NewFlaky wraps inner with the fault model of cfg. It panics when a
// rate lies outside [0, 1].
func NewFlaky(inner device.Device, cfg Config) *Flaky {
	if cfg.TransientRate < 0 || cfg.TransientRate > 1 {
		panic(fmt.Sprintf("fault: TransientRate %g outside [0, 1]", cfg.TransientRate))
	}
	if cfg.SpikeRate < 0 || cfg.SpikeRate > 1 {
		panic(fmt.Sprintf("fault: SpikeRate %g outside [0, 1]", cfg.SpikeRate))
	}
	return &Flaky{
		inner: device.AsFallible(inner),
		cfg:   cfg,
		rng:   xrand.Derive(cfg.Seed, "fault:flaky"),
	}
}

// Name implements device.Device.
func (f *Flaky) Name() string { return "flaky(" + f.inner.Name() + ")" }

// Clock implements device.Device, sharing the inner device's clock.
func (f *Flaky) Clock() *device.Clock { return f.inner.Clock() }

// Submissions implements device.Device. It counts every offered
// submission, failed ones included — the index space Schedule outages
// are expressed in.
func (f *Flaky) Submissions() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.next
}

// Inner returns the wrapped device.
func (f *Flaky) Inner() device.Fallible { return f.inner }

// Counters returns a snapshot of the injection counters.
func (f *Flaky) Counters() Counters {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.c
}

// FlakyState is a serialisable snapshot of a Flaky injector's mutable
// state: the submission cursor (the index space Schedule outages are
// expressed in), the crash flag, the counters, and the injection RNG.
// Restoring it resumes the exact fault sequence an interrupted run was
// experiencing, which checkpointed ingestion sessions need for
// deterministic replay under injected faults.
type FlakyState struct {
	Next     int64       `json:"next"`
	Crashed  bool        `json:"crashed"`
	Counters Counters    `json:"counters"`
	RNG      xrand.State `json:"rng"`
}

// ExportState snapshots the injector's mutable state.
func (f *Flaky) ExportState() FlakyState {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FlakyState{Next: f.next, Crashed: f.crashed, Counters: f.c, RNG: f.rng.State()}
}

// ImportState overwrites the injector's mutable state with a snapshot
// taken by ExportState. A negative submission cursor is rejected, leaving
// the injector untouched.
func (f *Flaky) ImportState(st FlakyState) error {
	if st.Next < 0 {
		return fmt.Errorf("fault: snapshot has negative submission cursor %d", st.Next)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.next = st.Next
	f.crashed = st.Crashed
	f.c = st.Counters
	f.rng.SetState(st.RNG)
	return nil
}

// Crash puts the device into a hard outage: every submission fails with
// ErrOutage until Restore is called. Use it to script outages around
// streaming sessions where submission indices are awkward to
// precompute.
func (f *Flaky) Crash() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = true
}

// Restore ends a Crash outage.
func (f *Flaky) Restore() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = false
}

// Crashed reports whether the device is in a Crash outage.
func (f *Flaky) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Submit implements device.Device, panicking with *device.Unavailable on
// an injected failure.
func (f *Flaky) Submit(nExtract, nDistance int, run func(i int)) {
	if err := f.TrySubmit(nExtract, nDistance, run); err != nil {
		panic(&device.Unavailable{Err: err})
	}
}

// TrySubmit implements device.Fallible: consult the fault model, then
// delegate to the inner device.
func (f *Flaky) TrySubmit(nExtract, nDistance int, run func(i int)) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	idx := f.next
	f.next++
	f.c.Attempts++

	if f.crashed || f.cfg.Schedule.Covers(idx) {
		f.c.Outages++
		f.inner.Clock().Add(f.cfg.FailureLatency)
		return fmt.Errorf("fault: submission %d: %w", idx, ErrOutage)
	}
	if f.cfg.TransientRate > 0 && f.rng.Float64() < f.cfg.TransientRate {
		f.c.Transients++
		f.inner.Clock().Add(f.cfg.FailureLatency)
		return fmt.Errorf("fault: submission %d: %w", idx, ErrTransient)
	}
	var spike time.Duration
	if f.cfg.SpikeRate > 0 && f.rng.Float64() < f.cfg.SpikeRate {
		spike = f.cfg.SpikeLatency
		f.c.Spikes++
	}

	clock := f.inner.Clock()
	before := clock.Elapsed()
	//tmerge:allow lock-discipline injector draws from a seeded RNG and numbers submissions; single-flight keeps the fault schedule deterministic
	if err := f.inner.TrySubmit(nExtract, nDistance, run); err != nil {
		return err
	}
	clock.Add(spike)
	cost := clock.Elapsed() - before
	if f.cfg.Timeout > 0 && cost > f.cfg.Timeout {
		f.c.Timeouts++
		return fmt.Errorf("fault: submission %d took %v, deadline %v: %w", idx, cost, f.cfg.Timeout, ErrTimeout)
	}
	f.c.Successes++
	return nil
}
