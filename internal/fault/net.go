package fault

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/tmerge/tmerge/internal/xrand"
)

// NetConfig scripts a Proxy's per-connection fault rolls. Each accepted
// connection draws its fate from an RNG derived from Seed and the
// connection's accept index, so a given seed always produces the same
// fault pattern over the same connection sequence — the network-side
// analogue of the Flaky device's seeded injection.
//
// Rates are evaluated in order: drop, then stall, then truncate; a
// connection suffers at most one fault. All rates zero yields a
// transparent proxy.
type NetConfig struct {
	// Seed keys the per-connection fault stream.
	Seed uint64
	// DropRate is the probability an accepted connection is closed
	// immediately, before any byte is forwarded — the client observes a
	// connection reset or an empty reply.
	DropRate float64
	// StallRate is the probability an accepted connection is held open
	// without forwarding anything for StallFor, then closed — the client
	// observes its request deadline expiring.
	StallRate float64
	// StallFor bounds how long a stalled connection is held; 0 defaults
	// to 50ms. Keep it above the client's per-request deadline to
	// actually exercise timeouts, or below to merely add latency.
	StallFor time.Duration
	// TruncateRate is the probability a connection is cut mid-exchange:
	// a per-connection byte budget is drawn uniformly from [1,
	// TruncateAfter], and the first copied byte past it severs both
	// directions — the client observes a truncated response or a broken
	// write.
	TruncateRate float64
	// TruncateAfter bounds the truncation byte budget; 0 defaults to 512.
	TruncateAfter int
}

// NetCounters reports what a Proxy actually did — the evidence a chaos
// test asserts on so a "passing" run cannot be one where no fault fired.
type NetCounters struct {
	// Conns counts accepted connections.
	Conns int64
	// Dropped, Stalled, Truncated count connections that suffered each
	// fault.
	Dropped   int64
	Stalled   int64
	Truncated int64
	// Forwarded counts connections proxied transparently end to end.
	Forwarded int64
}

// Proxy is a fault-injecting TCP proxy: it listens on a loopback port,
// dials the backend for every accepted connection, and forwards bytes in
// both directions, except when the seeded per-connection roll scripts a
// drop, stall, or truncation. The backend address is retargetable at any
// time (SetBackend), so the proxy endpoint stays stable across a backend
// crash/restart — clients keep one address while the server behind it
// dies and comes back, exactly the scenario the ingress chaos test
// stages.
type Proxy struct {
	cfg NetConfig
	ln  net.Listener

	mu      sync.Mutex
	backend string
	counts  NetCounters
	nextID  uint64
	closed  bool

	wg sync.WaitGroup
}

// NewProxy starts a proxy listening on addr (use "127.0.0.1:0" for an
// ephemeral loopback port) and forwarding to backend. Close releases the
// listener and every in-flight connection.
func NewProxy(addr, backend string, cfg NetConfig) (*Proxy, error) {
	if cfg.StallFor <= 0 {
		cfg.StallFor = 50 * time.Millisecond
	}
	if cfg.TruncateAfter <= 0 {
		cfg.TruncateAfter = 512
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fault: proxy listen %s: %w", addr, err)
	}
	p := &Proxy{cfg: cfg, ln: ln, backend: backend}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listening address — the stable endpoint
// clients dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetBackend retargets where new connections are forwarded. In-flight
// connections keep their original backend; only subsequent accepts see
// the new one.
func (p *Proxy) SetBackend(addr string) {
	p.mu.Lock()
	p.backend = addr
	p.mu.Unlock()
}

// Counters returns a snapshot of the proxy's fault accounting.
func (p *Proxy) Counters() NetCounters {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counts
}

// Close stops accepting and waits for every connection goroutine to
// exit. Safe to call more than once.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

// acceptLoop owns the listener: each accepted connection gets a stable
// index, a derived RNG, and its own goroutine.
func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		id := p.nextID
		p.nextID++
		p.counts.Conns++
		backend := p.backend
		closed := p.closed
		p.mu.Unlock()
		if closed {
			_ = conn.Close()
			return
		}
		p.wg.Add(1)
		go p.serve(conn, id, backend)
	}
}

// serve applies the connection's fault roll, then (unless dropped)
// proxies bytes until either side closes or the truncation budget runs
// out.
func (p *Proxy) serve(conn net.Conn, id uint64, backend string) {
	defer p.wg.Done()
	defer conn.Close()

	rng := xrand.Derive(p.cfg.Seed, fmt.Sprintf("conn-%d", id))
	switch {
	case rng.Float64() < p.cfg.DropRate:
		p.bump(func(c *NetCounters) { c.Dropped++ })
		return
	case rng.Float64() < p.cfg.StallRate:
		p.bump(func(c *NetCounters) { c.Stalled++ })
		p.stall()
		return
	}
	budget := -1 // unlimited
	if rng.Float64() < p.cfg.TruncateRate {
		budget = 1 + rng.Intn(p.cfg.TruncateAfter)
		p.bump(func(c *NetCounters) { c.Truncated++ })
	}

	// Deadline-bounded dial: a black-holed backend must not pin proxy
	// goroutines past Close.
	dialer := net.Dialer{Timeout: 10 * time.Second}
	up, err := dialer.Dial("tcp", backend)
	if err != nil {
		return // backend down: the client sees the connection close, retries
	}
	defer up.Close()

	lim := newLimiter(budget, func() {
		// Budget exhausted: sever both directions mid-stream.
		_ = conn.Close()
		_ = up.Close()
	})
	done := make(chan struct{}, 2)
	go func() { _, _ = io.Copy(up, lim.wrap(conn)); _ = closeWrite(up); done <- struct{}{} }()
	go func() { _, _ = io.Copy(conn, lim.wrap(up)); _ = closeWrite(conn); done <- struct{}{} }()
	<-done
	<-done
	if budget < 0 {
		p.bump(func(c *NetCounters) { c.Forwarded++ })
	}
}

// stall holds a connection without forwarding until StallFor elapses or
// the proxy closes.
func (p *Proxy) stall() {
	deadline := p.cfg.StallFor
	const step = 5 * time.Millisecond
	for waited := time.Duration(0); waited < deadline; waited += step {
		p.mu.Lock()
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return
		}
		time.Sleep(step)
	}
}

// bump applies one counter mutation under the proxy lock.
func (p *Proxy) bump(f func(*NetCounters)) {
	p.mu.Lock()
	f(&p.counts)
	p.mu.Unlock()
}

// closeWrite half-closes a TCP connection's write side so the peer sees
// EOF once the copied direction finishes.
func closeWrite(c net.Conn) error {
	if t, ok := c.(*net.TCPConn); ok {
		return t.CloseWrite()
	}
	return nil
}

// limiter enforces a shared byte budget across both copy directions and
// fires onExhaust exactly once when the budget is crossed.
type limiter struct {
	unlimited bool // immutable after construction

	mu        sync.Mutex
	remaining int
	fired     bool
	onExhaust func()
}

func newLimiter(budget int, onExhaust func()) *limiter {
	return &limiter{unlimited: budget < 0, remaining: budget, onExhaust: onExhaust}
}

// wrap returns r limited by the shared budget.
func (l *limiter) wrap(r io.Reader) io.Reader {
	if l.unlimited {
		return r
	}
	return &limitedReader{l: l, r: r}
}

type limitedReader struct {
	l *limiter
	r io.Reader
}

// Read forwards at most the remaining budget; crossing it fires the
// exhaust hook and reports an unexpected EOF.
func (lr *limitedReader) Read(b []byte) (int, error) {
	lr.l.mu.Lock()
	if lr.l.remaining <= 0 {
		fire := !lr.l.fired
		lr.l.fired = true
		lr.l.mu.Unlock()
		if fire {
			lr.l.onExhaust()
		}
		return 0, io.ErrUnexpectedEOF
	}
	if len(b) > lr.l.remaining {
		b = b[:lr.l.remaining]
	}
	lr.l.mu.Unlock()
	n, err := lr.r.Read(b)
	lr.l.mu.Lock()
	lr.l.remaining -= n
	lr.l.mu.Unlock()
	return n, err
}
