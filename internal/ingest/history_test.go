package ingest

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/dataset"
	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/query"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/track"
	"github.com/tmerge/tmerge/internal/video"
)

// histSession builds a session over the standard stream-test pipeline
// (WindowLen 400, matching driveQueryStream) with an optional history
// config attached.
func histSession(t *testing.T, algo core.Algorithm, workers int, hc *HistoryConfig) *Ingestor {
	t.Helper()
	oracle := reid.NewOracle(reid.NewModel(7, dataset.AppearanceDim), device.NewCPU(device.DefaultCPU))
	in, err := New(track.Tracktor(), oracle, Config{
		WindowLen: 400,
		K:         0.05,
		Algorithm: algo,
		Workers:   workers,
		History:   hc,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// pushSceneTo replays the scene into a session with driveQueryStream's
// cadence: frame-by-frame to 1000, then a gap that closes several
// windows at once (the parallel-executor path), then the Close flush.
func pushSceneTo(in *Ingestor, dets [][]video.BBox) {
	for f := 0; f <= 1000 && f < len(dets); f++ {
		in.PushAt(video.FrameIndex(f), dets[f])
	}
	last := len(dets) - 1
	in.PushAt(video.FrameIndex(last), dets[last])
	in.Close()
}

// asofAnswers bootstraps fresh operators over a reconstructed view —
// exactly how a historical query is answered — in sqBatch row shape.
func asofAnswers(v query.TrackView) [][][]video.TrackID {
	out := make([][][]video.TrackID, 4)
	for i, s := range sqOps() {
		s.op.Apply(v, v.IDs(), nil)
		out[i] = s.op.Results()
	}
	return out
}

// TestHistorySessionEquivalentToPlain is the tentpole equivalence
// property: for every tested seed × algorithm × worker count, a
// history-enabled session (journaled log, tiered view, periodic seal
// and compaction) produces window results — including merge events and
// per-window query deltas answered from the tiered view — bit-identical
// to a plain session holding the full view in memory, and a cold replay
// of the compacted log reproduces the plain view's state exactly.
func TestHistorySessionEquivalentToPlain(t *testing.T) {
	v := streamScene(t)
	type combo struct {
		algo    string
		seed    uint64
		workers int
	}
	var combos []combo
	for _, name := range []string{"baseline", "spatial", "lcb", "ps", "tmerge"} {
		combos = append(combos, combo{name, 5, 1})
	}
	combos = append(combos,
		combo{"baseline", 5, 4},
		combo{"tmerge", 5, 4},
		combo{"tmerge", 11, 1},
		combo{"tmerge", 11, 4},
	)
	if testing.Short() {
		combos = []combo{{"baseline", 5, 1}, {"tmerge", 5, 1}}
	}

	for _, c := range combos {
		c := c
		t.Run(fmt.Sprintf("%s-seed%d-w%d", c.algo, c.seed, c.workers), func(t *testing.T) {
			plain := histSession(t, sqAlgorithms(c.seed)[c.algo], c.workers, nil)
			hist := histSession(t, sqAlgorithms(c.seed)[c.algo], c.workers, &HistoryConfig{
				Dir:               t.TempDir(),
				HotHorizon:        800,
				WindowsPerSegment: 3,
				CompactEvery:      2,
			})
			for _, in := range []*Ingestor{plain, hist} {
				for _, s := range sqOps() {
					if _, err := in.Subscribe(s.name, s.op); err != nil {
						t.Fatal(err)
					}
				}
			}
			pushSceneTo(plain, v.Detections)
			pushSceneTo(hist, v.Detections)
			if err := hist.HistoryErr(); err != nil {
				t.Fatalf("history log failed: %v", err)
			}

			// Window results carry the merge events and every query's
			// delta stream; the history side answered them from the
			// tiered view, the plain side from the full live view.
			if !reflect.DeepEqual(plain.Results(), hist.Results()) {
				t.Fatal("window results (events + query deltas) diverged between plain and history sessions")
			}

			// Cold replay of the log — base snapshot plus raw tail after
			// the mid-stream compactions — must reproduce the plain
			// session's full view state bit for bit.
			rv, err := hist.hist.log.ReplayView(-1)
			if err != nil {
				t.Fatalf("ReplayView: %v", err)
			}
			if !reflect.DeepEqual(rv.State(), plain.view.State()) {
				t.Fatal("replayed view state diverged from the plain session's live view")
			}

			// The run must have actually exercised the machinery it
			// claims to prove: compactions folded segments and the tier
			// evicted beyond-horizon tracks.
			if hist.hist.log.RetentionFrame() <= 0 {
				t.Error("compaction never ran (retention frame still 0)")
			}
			hot, cold, _, stats := hist.HistoryStats()
			if stats.Evicted == 0 || cold == 0 {
				t.Errorf("tiering idle: evicted %d, cold %d", stats.Evicted, cold)
			}
			if hot+cold != plain.view.Len() {
				t.Errorf("tier split %d+%d does not cover %d identities", hot, cold, plain.view.Len())
			}
		})
	}
}

// TestHistoryAsOfMatchesBatchAnswers pins time travel: at every
// interior window cut — recorded live as the batch answer over the
// merged tracks at the moment the window committed — AsOf reconstructs
// a view whose bootstrapped operator answers equal that batch answer,
// across a checkpoint/restore boundary in the middle of the stream.
func TestHistoryAsOfMatchesBatchAnswers(t *testing.T) {
	v := streamScene(t)
	dir := t.TempDir()
	mkCfg := func() Config {
		acfg := core.DefaultTMergeConfig(5)
		acfg.TauMax = 1200
		return Config{
			WindowLen: 400,
			K:         0.05,
			Algorithm: core.NewTMerge(acfg),
			History:   &HistoryConfig{Dir: dir, HotHorizon: 800, WindowsPerSegment: 3},
		}
	}
	newOracle := func() *reid.Oracle {
		return reid.NewOracle(reid.NewModel(7, dataset.AppearanceDim), device.NewCPU(device.DefaultCPU))
	}
	in, err := New(track.Tracktor(), newOracle(), mkCfg())
	if err != nil {
		t.Fatal(err)
	}

	type cut struct {
		frame video.FrameIndex
		want  [][][]video.TrackID
	}
	var cuts []cut
	record := func(in *Ingestor, closed []WindowResult) {
		if len(closed) == 0 {
			return
		}
		end := in.lastClosedEnd()
		c := cut{end, sqBatch(clipSet(in.MergedTracks(), end))}
		// The Close flush commits clipped tail windows sharing the final
		// frame as End; AsOf at that frame covers all of them, so the
		// later record supersedes the earlier one.
		if len(cuts) > 0 && cuts[len(cuts)-1].frame == end {
			cuts[len(cuts)-1] = c
			return
		}
		cuts = append(cuts, c)
	}

	const ckptFrame = 1300
	for f := 0; f < ckptFrame; f++ {
		record(in, in.PushAt(video.FrameIndex(f), v.Detections[f]))
	}
	preCkpt := len(cuts)
	if preCkpt == 0 {
		t.Fatal("no window committed before the checkpoint")
	}
	data, err := in.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Restore(track.Tracktor(), newOracle(), mkCfg(), data)
	if err != nil {
		t.Fatal(err)
	}
	for f := ckptFrame; f < len(v.Detections); f++ {
		record(resumed, resumed.PushAt(video.FrameIndex(f), v.Detections[f]))
	}
	record(resumed, resumed.Close())

	interior := cuts[:len(cuts)-1]
	if len(interior) < 3 || preCkpt >= len(interior) {
		t.Fatalf("need >=3 interior cuts straddling the checkpoint, have %d (checkpoint after %d)", len(interior), preCkpt)
	}
	for i, c := range interior {
		av, cf, err := resumed.AsOf(c.frame)
		if err != nil {
			t.Fatalf("AsOf(%d): %v", c.frame, err)
		}
		if cf != c.frame {
			t.Fatalf("AsOf(%d) landed on cut %d", c.frame, cf)
		}
		if got := asofAnswers(av); !reflect.DeepEqual(got, c.want) {
			t.Fatalf("cut %d (frame %d, %s checkpoint): AsOf answers diverged from the batch answer recorded live",
				i, c.frame, map[bool]string{true: "before", false: "after"}[i < preCkpt])
		}
	}

	// A frame between cuts resolves to the last committed window before
	// it; a frame before the first commit reports no coverage.
	mid := interior[1].frame + 1
	if _, cf, err := resumed.AsOf(mid); err != nil || cf != interior[1].frame {
		t.Fatalf("AsOf(%d) = cut %d, err %v; want cut %d", mid, cf, err, interior[1].frame)
	}
	if _, cf, err := resumed.AsOf(interior[0].frame - 1); err != nil || cf != -1 {
		t.Fatalf("AsOf before first commit = cut %d, err %v; want -1", cf, err)
	}
}

// TestHistoryCheckpointRestoreEquivalence: a history session interrupted
// by checkpoint/crash/restore — with windows committed after the
// checkpoint that the crash loses — finishes with window results,
// operator states, and replayed view state identical to an
// uninterrupted session's, after the restore truncates the log back to
// the checkpoint position.
func TestHistoryCheckpointRestoreEquivalence(t *testing.T) {
	v := streamScene(t)
	const cut = 1300
	mkCfg := func(dir string) Config {
		acfg := core.DefaultTMergeConfig(5)
		acfg.TauMax = 1200
		return Config{
			WindowLen: 400,
			K:         0.05,
			Algorithm: core.NewTMerge(acfg),
			History:   &HistoryConfig{Dir: dir, HotHorizon: 800, WindowsPerSegment: 3},
		}
	}
	newOracle := func() *reid.Oracle {
		return reid.NewOracle(reid.NewModel(7, dataset.AppearanceDim), device.NewCPU(device.DefaultCPU))
	}
	subscribe := func(t *testing.T, in *Ingestor) []struct {
		name string
		op   query.Incremental
	} {
		ops := sqOps()
		for _, s := range ops {
			if _, err := in.Subscribe(s.name, s.op); err != nil {
				t.Fatal(err)
			}
		}
		return ops
	}

	// Reference: uninterrupted.
	ref, err := New(track.Tracktor(), newOracle(), mkCfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	refOps := subscribe(t, ref)
	for f, dets := range v.Detections {
		ref.PushAt(video.FrameIndex(f), dets)
	}
	ref.Close()

	// Interrupted: checkpoint at the cut, keep streaming (these windows
	// reach the log but die with the crash), then restore from the
	// checkpoint in the same directory.
	dir := t.TempDir()
	first, err := New(track.Tracktor(), newOracle(), mkCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	subscribe(t, first)
	for f, dets := range v.Detections[:cut] {
		first.PushAt(video.FrameIndex(f), dets)
	}
	data, err := first.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	preWindows := first.hist.log.Windows()
	for f := cut; f < cut+700; f++ {
		first.PushAt(video.FrameIndex(f), v.Detections[f])
	}
	if first.hist.log.Windows() <= preWindows {
		t.Fatal("post-checkpoint stream committed no windows; the truncation path is not exercised")
	}

	resumed, err := Restore(track.Tracktor(), newOracle(), mkCfg(dir), data)
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.hist.log.Windows(); got != preWindows {
		t.Fatalf("restore left %d windows in the log, checkpoint covered %d", got, preWindows)
	}
	resumedOps := subscribe(t, resumed)
	for f := cut; f < len(v.Detections); f++ {
		resumed.PushAt(video.FrameIndex(f), v.Detections[f])
	}
	resumed.Close()

	if err := resumed.HistoryErr(); err != nil {
		t.Fatalf("resumed history failed: %v", err)
	}
	if !reflect.DeepEqual(ref.Results(), resumed.Results()) {
		t.Error("window results diverged across the checkpoint cut")
	}
	for i, s := range resumedOps {
		if !reflect.DeepEqual(refOps[i].op.State(), s.op.State()) {
			t.Errorf("%s: operator state diverged across the checkpoint cut", s.name)
		}
	}
	rv, err := resumed.hist.log.ReplayView(-1)
	if err != nil {
		t.Fatal(err)
	}
	wv, err := ref.hist.log.ReplayView(-1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rv.State(), wv.State()) {
		t.Error("replayed log state diverged across the checkpoint cut")
	}
}

// TestHistoryRestoreMismatches: the restore path refuses configuration
// that disagrees with the checkpoint about history.
func TestHistoryRestoreMismatches(t *testing.T) {
	v := streamScene(t)
	dir := t.TempDir()
	hin := histSession(t, sqAlgorithms(5)["tmerge"], 1, &HistoryConfig{Dir: dir, HotHorizon: 800})
	for f, dets := range v.Detections[:900] {
		hin.PushAt(video.FrameIndex(f), dets)
	}
	histData, err := hin.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	plain := histSession(t, sqAlgorithms(5)["tmerge"], 1, nil)
	for f, dets := range v.Detections[:900] {
		plain.PushAt(video.FrameIndex(f), dets)
	}
	plainData, err := plain.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	oracle := func() *reid.Oracle {
		return reid.NewOracle(reid.NewModel(7, dataset.AppearanceDim), device.NewCPU(device.DefaultCPU))
	}
	mkCfg := func(hc *HistoryConfig) Config {
		return Config{WindowLen: 400, K: 0.05, Algorithm: sqAlgorithms(5)["tmerge"], History: hc}
	}
	if _, err := Restore(track.Tracktor(), oracle(), mkCfg(nil), histData); err == nil {
		t.Error("history checkpoint restored into a history-less config")
	}
	if _, err := Restore(track.Tracktor(), oracle(), mkCfg(&HistoryConfig{Dir: dir, HotHorizon: 800}), plainData); err == nil {
		t.Error("plain checkpoint restored into a history config")
	}
	if _, err := Restore(track.Tracktor(), oracle(), mkCfg(&HistoryConfig{Dir: dir, HotHorizon: 1200}), histData); err == nil {
		t.Error("horizon mismatch accepted on restore")
	}
	if _, err := Restore(track.Tracktor(), oracle(), mkCfg(&HistoryConfig{Dir: dir, HotHorizon: 800}), histData); err != nil {
		t.Errorf("matching restore failed: %v", err)
	}
}

// TestHistoryConfigValidationAndAsOfErrors covers the config guards and
// the AsOf refusals outside a healthy history session.
func TestHistoryConfigValidationAndAsOfErrors(t *testing.T) {
	bad := []HistoryConfig{
		{Dir: ""},                   // no directory
		{Dir: "x", HotHorizon: 799}, // below 2×WindowLen
		{Dir: "x", HotHorizon: 800, CompactEvery: -1}, // negative knobs
		{Dir: "x", HotHorizon: 800, WindowsPerSegment: -1},
	}
	oracle := reid.NewOracle(reid.NewModel(7, dataset.AppearanceDim), device.NewCPU(device.DefaultCPU))
	for i, hc := range bad {
		hc := hc
		cfg := Config{WindowLen: 400, K: 0.05, Algorithm: core.NewBaseline(), History: &hc}
		if _, err := New(track.Tracktor(), oracle, cfg); err == nil {
			t.Errorf("case %d: invalid history config accepted", i)
		}
	}

	plain := histSession(t, core.NewBaseline(), 1, nil)
	if _, _, err := plain.AsOf(100); err == nil {
		t.Error("AsOf on a history-less session succeeded")
	}
}

// TestHistoryRetentionAfterCompaction: compaction trades time-travel
// range for replay cost — AsOf refuses cuts before the retention
// boundary and still answers exactly at and after it.
func TestHistoryRetentionAfterCompaction(t *testing.T) {
	v := streamScene(t)
	in := histSession(t, sqAlgorithms(5)["tmerge"], 1, &HistoryConfig{
		Dir:               t.TempDir(),
		HotHorizon:        800,
		WindowsPerSegment: 2,
		CompactEvery:      2,
	})
	type cut struct {
		frame video.FrameIndex
		want  [][][]video.TrackID
	}
	var cuts []cut
	record := func(closed []WindowResult) {
		if len(closed) == 0 {
			return
		}
		end := in.lastClosedEnd()
		c := cut{end, sqBatch(clipSet(in.MergedTracks(), end))}
		if len(cuts) > 0 && cuts[len(cuts)-1].frame == end {
			cuts[len(cuts)-1] = c
			return
		}
		cuts = append(cuts, c)
	}
	for f, dets := range v.Detections {
		record(in.PushAt(video.FrameIndex(f), dets))
	}
	record(in.Close())
	if err := in.HistoryErr(); err != nil {
		t.Fatal(err)
	}
	retention := in.hist.log.RetentionFrame()
	if retention <= 0 {
		t.Fatal("compaction never ran")
	}
	checked := 0
	for _, c := range cuts {
		av, cf, err := in.AsOf(c.frame)
		if c.frame < retention {
			if err == nil {
				t.Fatalf("AsOf(%d) before retention %d succeeded", c.frame, retention)
			}
			continue
		}
		if err != nil {
			t.Fatalf("AsOf(%d): %v", c.frame, err)
		}
		if cf != c.frame {
			t.Fatalf("AsOf(%d) landed on %d", c.frame, cf)
		}
		if !reflect.DeepEqual(asofAnswers(av), c.want) {
			t.Fatalf("AsOf(%d) diverged from the live batch answer", c.frame)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("every cut fell before the retention boundary; nothing was verified")
	}
}
