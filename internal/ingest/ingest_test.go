package ingest

import (
	"testing"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/dataset"
	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/motmetrics"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/synth"
	"github.com/tmerge/tmerge/internal/track"
	"github.com/tmerge/tmerge/internal/video"
)

func streamScene(t *testing.T) *synth.Video {
	t.Helper()
	cfg := synth.Config{
		Seed: 91, Name: "stream", NumFrames: 2400, Width: 900, Height: 700,
		ArrivalRate: 0.03, MaxObjects: 7, MinSpan: 80, MaxSpan: 500,
		SpeedMin: 0.4, SpeedMax: 1.6, SizeMin: 60, SizeMax: 120,
		AppearanceDim: dataset.AppearanceDim, AppearanceNoise: 0.06,
		PosAppearanceWeight: 0.45, AppearanceDrift: 0.004,
		OutlierProb: 0.2, OutlierNoise: 0.15,
		OcclusionCoverage: 0.45, MissProb: 0.02,
		GlareRate: 0.01, GlareDuration: 45, GlareSize: 260,
	}
	v, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func newIngestor(t *testing.T, inspect Inspector) *Ingestor {
	t.Helper()
	model := reid.NewModel(7, dataset.AppearanceDim)
	oracle := reid.NewOracle(model, device.NewCPU(device.DefaultCPU))
	cfg := core.DefaultTMergeConfig(5)
	cfg.TauMax = 4000
	in, err := New(track.Tracktor(), oracle, Config{
		WindowLen: 1000,
		K:         0.05,
		Algorithm: core.NewTMerge(cfg),
		Inspect:   inspect,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestIngestorWindowsCloseOnSchedule(t *testing.T) {
	v := streamScene(t)
	in := newIngestor(t, nil)
	closeFrames := map[int]video.FrameIndex{}
	for f, dets := range v.Detections {
		for _, res := range in.Push(dets) {
			closeFrames[res.Window.Index] = video.FrameIndex(f)
		}
	}
	final := in.Close()
	// 2400 frames, L=1000: windows start at 0,500,...; only windows whose
	// full extent fits the stream close during it: ends 999, 1499, 1999.
	if len(closeFrames) != 3 {
		t.Fatalf("%d windows closed during the stream, want 3", len(closeFrames))
	}
	for idx, f := range closeFrames {
		wantEnd := video.FrameIndex(idx*500 + 999)
		if f != wantEnd {
			t.Errorf("window %d closed at frame %d, want %d", idx, f, wantEnd)
		}
	}
	// Close flushes the clipped tail windows (starts 1500 and 2000).
	if len(final) != 2 {
		t.Fatalf("Close flushed %d windows, want 2", len(final))
	}
	for _, res := range final {
		if res.Window.End != 2399 {
			t.Errorf("flushed window %d ends at %d, want 2399", res.Window.Index, res.Window.End)
		}
	}
	if in.FramesSeen() != v.NumFrames {
		t.Errorf("FramesSeen = %d", in.FramesSeen())
	}
}

func TestIngestorMatchesOfflinePipelineCoverage(t *testing.T) {
	// Every track Tc assignment the offline partitioner makes must also
	// be made online: the total pair universes should match.
	v := streamScene(t)
	in := newIngestor(t, nil)
	for _, dets := range v.Detections {
		in.Push(dets)
	}
	in.Close()

	offline := track.Tracktor().Track(v.Detections)
	oraclePairs := 0
	var prev []*video.Track
	for _, w := range video.Partition(v.NumFrames, 1000) {
		cur := video.WindowTracks(offline, w)
		ps := video.BuildPairSet(w, cur, prev)
		oraclePairs += ps.Len()
		prev = cur
	}
	online := 0
	for _, res := range in.Results() {
		online += res.Pairs
	}
	// Online snapshots clip active tracks mid-flight, and a track that
	// has not yet reached MinHits at a window boundary may be missed;
	// allow a small discrepancy but not a structural one.
	diff := online - oraclePairs
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.1*float64(oraclePairs)+5 {
		t.Errorf("online pair count %d too far from offline %d", online, oraclePairs)
	}
}

func TestIngestorInspectedMergeImprovesIdentity(t *testing.T) {
	v := streamScene(t)
	// Ground-truth inspector: accept only true polyonymous pairs.
	inspect := func(p *video.Pair) bool {
		oi := motmetrics.TrackObject(p.TI)
		return oi >= 0 && oi == motmetrics.TrackObject(p.TJ)
	}
	in := newIngestor(t, inspect)
	for _, dets := range v.Detections {
		in.Push(dets)
	}
	in.Close()

	merged := in.MergedTracks()
	raw := track.Tracktor().Track(v.Detections)
	before := motmetrics.Identity(v.GT, raw)
	after := motmetrics.Identity(v.GT, merged)
	if after.IDF1 < before.IDF1-1e-9 {
		t.Errorf("online merge reduced IDF1: %v -> %v", before.IDF1, after.IDF1)
	}
	// Some merges should actually have happened.
	totalMerged := 0
	for _, res := range in.Results() {
		totalMerged += len(res.Merged)
	}
	if totalMerged == 0 {
		t.Error("no pairs merged over the whole stream")
	}
}

func TestIngestorRejectingInspectorMergesNothing(t *testing.T) {
	v := streamScene(t)
	in := newIngestor(t, func(*video.Pair) bool { return false })
	for _, dets := range v.Detections {
		in.Push(dets)
	}
	in.Close()
	for _, res := range in.Results() {
		if len(res.Merged) != 0 {
			t.Fatal("rejecting inspector must merge nothing")
		}
	}
	if len(in.Merger().Groups()) != 0 {
		t.Error("merger has groups despite rejecting inspector")
	}
}

func TestIngestorConfigValidation(t *testing.T) {
	model := reid.NewModel(7, dataset.AppearanceDim)
	oracle := reid.NewOracle(model, device.NewCPU(device.DefaultCPU))
	algo := core.NewBaseline()
	cases := []Config{
		{WindowLen: 0, K: 0.05, Algorithm: algo},
		{WindowLen: 999, K: 0.05, Algorithm: algo},
		{WindowLen: 1000, K: 0, Algorithm: algo},
		{WindowLen: 1000, K: 1.5, Algorithm: algo},
		{WindowLen: 1000, K: 0.05, Algorithm: nil},
	}
	for i, cfg := range cases {
		if _, err := New(track.SORT(), oracle, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestIngestorMergedTracksMidStream(t *testing.T) {
	v := streamScene(t)
	in := newIngestor(t, nil)
	for f, dets := range v.Detections {
		in.Push(dets)
		if f == 1500 {
			ts := in.MergedTracks()
			if ts.Len() == 0 {
				t.Fatal("no tracks mid-stream")
			}
			for _, tr := range ts.Tracks() {
				if err := tr.Validate(); err != nil {
					t.Fatalf("mid-stream track invalid: %v", err)
				}
			}
		}
	}
}
