package ingest

import (
	"math"
	"sync"
	"testing"
	"time"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/dataset"
	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/fault"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/serve/loadgen"
	"github.com/tmerge/tmerge/internal/synth"
	"github.com/tmerge/tmerge/internal/track"
	"github.com/tmerge/tmerge/internal/video"
)

// TestMonitoringAccessorsConcurrentWithPushAt pins the two documented
// exceptions to the Ingestor's single-flight contract: Quarantine() and
// the resilience/oracle counters reachable through Oracle() must be
// safe to read from a monitoring goroutine while PushAt runs — the
// serving layer's Snapshot does exactly that on every health poll. Run
// under -race this fails on any unsynchronised access.
func TestMonitoringAccessorsConcurrentWithPushAt(t *testing.T) {
	sc := loadgen.DefaultTemplate()
	sc.Seed, sc.NumFrames = 90, 160
	v, err := synth.Generate(sc)
	if err != nil {
		t.Fatal(err)
	}

	flaky := fault.NewFlaky(device.NewCPU(device.DefaultCPU), fault.Config{
		Seed: 90, TransientRate: 0.1, FailureLatency: 20 * time.Microsecond,
	})
	dev := device.NewResilientDevice(flaky,
		device.RetryPolicy{MaxAttempts: 3, Jitter: -1},
		device.BreakerConfig{Threshold: 4, Cooldown: -1, CooldownRejections: -1}, 90)
	oracle := reid.NewOracle(reid.NewModel(90^0x5EED, dataset.AppearanceDim), dev)

	in, err := New(track.Tracktor(), oracle, Config{
		WindowLen: 40, K: 0.1,
		Algorithm: core.NewTMerge(core.DefaultTMergeConfig(90)),
	})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			// Exactly the serving layer's health-poll reads.
			q := in.Quarantine()
			_ = q.TotalRejected
			_ = q.Counts
			_ = oracle.Stats()
			_ = dev.Counters()
			_ = dev.State().String()
		}
	}()

	for f := 0; f < v.NumFrames; f++ {
		dets := v.Detections[f]
		if f%7 == 3 && len(dets) > 0 {
			// Poison one detection per few frames so the quarantine ledger
			// takes writes while the poller reads it.
			bad := dets[0]
			bad.Rect.W = math.NaN()
			dets = append(append([]video.BBox(nil), dets...), bad)
		}
		in.PushAt(video.FrameIndex(f), dets)
	}
	close(done)
	wg.Wait()
	in.Close()

	if got := in.Quarantine().TotalRejected; got == 0 {
		t.Fatal("no detections quarantined; the ledger write path was never exercised")
	}
	if in.Quarantine().Counts[ReasonNonFiniteGeometry] == 0 {
		t.Fatal("poisoned detections were not classified as non-finite geometry")
	}
}
