package ingest

import (
	"fmt"
	"sort"

	"github.com/tmerge/tmerge/internal/checkpoint"
	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/fault"
	"github.com/tmerge/tmerge/internal/query"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/track"
	"github.com/tmerge/tmerge/internal/trackdb"
	"github.com/tmerge/tmerge/internal/video"
)

// Checkpoint seals the session's full mutable state — tracker
// hypotheses, identity map, ReID cache and counters, device resilience
// state, quarantine ledger, window results, and cursors — into a
// self-contained, versioned, checksummed byte slice. A session restored
// from it and fed the same subsequent frames produces bit-identical
// window results and merged tracks to the uninterrupted session.
//
// Call it between pushes only: the snapshot is taken at a frame
// boundary, which is the unit of replay.
//
// History sessions first seal the active history segment — durability
// of the journal is ordered before the checkpoint that references it —
// then trim the in-memory merger log to the sealed prefix and record a
// HistoryRef (manifest position) instead of embedding the view state.
// A session whose history log has already failed refuses to
// checkpoint: the reference could point at state the log does not
// actually hold.
func (in *Ingestor) Checkpoint() ([]byte, error) {
	if in.hist != nil {
		if in.hist.err != nil {
			return nil, fmt.Errorf("ingest: checkpoint refused, history log failed: %w", in.hist.err)
		}
		if err := in.hist.log.Seal(); err != nil {
			return nil, err
		}
		in.merger.TrimEvents(in.hist.log.SealedSeq())
		in.ckptCompactions = in.hist.compactions
	}
	st := checkpoint.SessionState{
		WindowLen:  in.cfg.WindowLen,
		K:          in.cfg.K,
		Algorithm:  in.cfg.Algorithm.Name(),
		ModelInDim: in.oracle.Model().InDim,
		ModelScale: in.oracle.Model().Scale(),

		NextFrame:  in.nextFrame,
		NextWindow: in.nextWindow,

		Stream: in.stream.State(),
		Merger: in.merger.State(),
		Oracle: in.oracle.State(),

		Quarantine:     in.quar.state(),
		QuarantineMark: in.quarMark,

		CreatedAtFrame: in.nextFrame,
	}
	for _, t := range in.prevTc {
		st.PrevTc = append(st.PrevTc, copyTrack(t))
	}
	for _, r := range in.results {
		st.Results = append(st.Results, toRecord(r))
	}

	// Streaming-query state: the live view (embedded for plain sessions,
	// referenced by manifest position for history sessions) and every
	// operator, so the restored session resumes incremental processing
	// without recomputing anything. Registered subscriptions first
	// (registration order), then any still-unclaimed restored states,
	// sorted by name.
	if in.view != nil {
		vs := in.view.State()
		st.View = &vs
	}
	if in.hist != nil {
		st.History = &checkpoint.HistoryRef{
			Windows:    in.hist.log.Windows(),
			Seq:        in.hist.log.Seq(),
			HotHorizon: in.hist.horizon,
		}
	}
	if in.view != nil || in.hist != nil {
		for _, s := range in.subs {
			st.Subscriptions = append(st.Subscriptions, checkpoint.SubscriptionState{Name: s.name, Op: s.op.State()})
		}
		if len(in.pendingOps) > 0 {
			names := make([]string, 0, len(in.pendingOps))
			for n := range in.pendingOps {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				st.Subscriptions = append(st.Subscriptions, checkpoint.SubscriptionState{Name: n, Op: in.pendingOps[n]})
			}
		}
	}

	// Walk the device chain from the oracle outwards, snapshotting each
	// wrapper that carries replay-relevant state. The virtual clock is
	// shared by the whole chain.
	dev := in.oracle.Device()
	st.ClockNS = int64(dev.Clock().Elapsed())
	for d := dev; d != nil; {
		switch v := d.(type) {
		case *device.ResilientDevice:
			s := v.ExportState()
			st.Resilient = &s
			d = v.Inner()
		case *fault.Flaky:
			s := v.ExportState()
			st.Flaky = &s
			d = v.Inner()
		default:
			d = nil
		}
	}

	return checkpoint.Seal(&st)
}

// Restore reconstructs an ingestion session from checkpoint bytes. The
// caller supplies a freshly assembled pipeline — tracker engine, oracle
// (with its device chain), and configuration — equivalent to the one the
// checkpoint was taken from; Restore verifies the config and model
// echoes and the device-chain shape before applying any state, so a
// checkpoint from a different pipeline fails loudly instead of silently
// diverging. Corrupt bytes are rejected wholesale by the envelope
// checksum; a semantically invalid snapshot (inconsistent hypothesis,
// dangling merger parent, mismatched cache dimensionality) is rejected
// before the oracle or devices are mutated.
func Restore(engine *track.Engine, oracle *reid.Oracle, cfg Config, data []byte) (*Ingestor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var st checkpoint.SessionState
	if err := checkpoint.Open(data, &st); err != nil {
		return nil, err
	}

	// Pipeline-equivalence echoes.
	if st.WindowLen != cfg.WindowLen {
		return nil, fmt.Errorf("ingest: restore: checkpoint has window length %d, config has %d", st.WindowLen, cfg.WindowLen)
	}
	if st.K != cfg.K {
		return nil, fmt.Errorf("ingest: restore: checkpoint has K=%g, config has K=%g", st.K, cfg.K)
	}
	if got := cfg.Algorithm.Name(); st.Algorithm != got {
		return nil, fmt.Errorf("ingest: restore: checkpoint was taken under algorithm %q, config has %q", st.Algorithm, got)
	}
	if m := oracle.Model(); st.ModelInDim != m.InDim || st.ModelScale != m.Scale() {
		return nil, fmt.Errorf("ingest: restore: checkpoint model (in_dim=%d scale=%g) does not match oracle model (in_dim=%d scale=%g)",
			st.ModelInDim, st.ModelScale, m.InDim, m.Scale())
	}

	// Cursor sanity.
	if st.NextFrame < 0 || st.NextWindow < 0 {
		return nil, fmt.Errorf("ingest: restore: negative cursors (frame %d, window %d)", st.NextFrame, st.NextWindow)
	}
	if st.ClockNS < 0 {
		return nil, fmt.Errorf("ingest: restore: negative clock %d ns", st.ClockNS)
	}

	// Reconstruct the side-effect-free components first; their
	// validation failures leave the caller's pipeline untouched.
	stream, err := engine.RestoreStream(st.Stream)
	if err != nil {
		return nil, fmt.Errorf("ingest: restore: %w", err)
	}
	merger, err := core.RestoreMerger(st.Merger)
	if err != nil {
		return nil, fmt.Errorf("ingest: restore: %w", err)
	}
	var prevTc []*video.Track
	for _, t := range st.PrevTc {
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("ingest: restore: carried window track invalid: %w", err)
		}
		prevTc = append(prevTc, copyTrack(t))
	}
	if st.Quarantine.Cap <= 0 {
		return nil, fmt.Errorf("ingest: restore: quarantine cap %d must be positive", st.Quarantine.Cap)
	}

	// History-mode / plain-mode agreement: a checkpoint taken with an
	// on-disk history must be restored with one (same horizon — checked
	// in restoreHistory), and vice versa; a checkpoint carrying both an
	// embedded view and a history reference is internally inconsistent.
	if (st.History != nil) != (cfg.History != nil) {
		return nil, fmt.Errorf("ingest: restore: checkpoint history reference present=%v, config history enabled=%v",
			st.History != nil, cfg.History != nil)
	}
	if st.History != nil && st.View != nil {
		return nil, fmt.Errorf("ingest: restore: checkpoint carries both an embedded view and a history reference")
	}

	// Streaming-query state. The view, when present, must have consumed
	// the merger's entire event log — checkpoints are taken between
	// pushes, after every committed window's events were applied.
	var view *trackdb.LiveView
	if st.View != nil {
		v, verr := trackdb.RestoreView(*st.View)
		if verr != nil {
			return nil, fmt.Errorf("ingest: restore: %w", verr)
		}
		if got, want := v.Seq(), st.Merger.EventBase+len(st.Merger.Events); got != want {
			return nil, fmt.Errorf("ingest: restore: view consumed %d merge events, merger log ends at %d", got, want)
		}
		view = v
	} else if len(st.Subscriptions) > 0 && st.History == nil {
		return nil, fmt.Errorf("ingest: restore: checkpoint has %d subscriptions but no view state", len(st.Subscriptions))
	}

	// History sessions replay the view from sealed segments instead; the
	// log is cut back to exactly the checkpoint's reference first.
	var hist *history
	if st.History != nil {
		h, herr := restoreHistory(cfg, &st)
		if herr != nil {
			return nil, herr
		}
		hist = h
	}
	var pending map[string]query.OperatorState
	if len(st.Subscriptions) > 0 {
		pending = make(map[string]query.OperatorState, len(st.Subscriptions))
		for _, sub := range st.Subscriptions {
			if sub.Name == "" {
				return nil, fmt.Errorf("ingest: restore: checkpoint subscription with empty name")
			}
			if _, dup := pending[sub.Name]; dup {
				return nil, fmt.Errorf("ingest: restore: duplicate checkpoint subscription %q", sub.Name)
			}
			pending[sub.Name] = sub.Op
		}
	}

	// Locate the device wrappers the snapshot claims. A snapshot/chain
	// shape mismatch means the caller assembled a different pipeline.
	var resilient *device.ResilientDevice
	var flaky *fault.Flaky
	for d := oracle.Device(); d != nil; {
		switch v := d.(type) {
		case *device.ResilientDevice:
			resilient = v
			d = v.Inner()
		case *fault.Flaky:
			flaky = v
			d = v.Inner()
		default:
			d = nil
		}
	}
	if (st.Resilient != nil) != (resilient != nil) {
		return nil, fmt.Errorf("ingest: restore: checkpoint resilient-device state present=%v, pipeline has resilient device=%v",
			st.Resilient != nil, resilient != nil)
	}
	if (st.Flaky != nil) != (flaky != nil) {
		return nil, fmt.Errorf("ingest: restore: checkpoint fault-injection state present=%v, pipeline has fault injector=%v",
			st.Flaky != nil, flaky != nil)
	}

	// Pre-validate the mutating restores so the apply phase below cannot
	// fail partway: each Import/Restore call also validates internally,
	// but by then earlier components would already be mutated.
	if st.Resilient != nil {
		if b := st.Resilient.Breaker; b < device.BreakerClosed || b > device.BreakerHalfOpen {
			return nil, fmt.Errorf("ingest: restore: invalid breaker state %d", b)
		}
	}
	if st.Flaky != nil && st.Flaky.Next < 0 {
		return nil, fmt.Errorf("ingest: restore: negative fault-injection cursor %d", st.Flaky.Next)
	}
	for _, cf := range st.Oracle.Cache {
		if len(cf.Vec) != oracle.Model().OutDim {
			return nil, fmt.Errorf("ingest: restore: cached feature %d has dim %d, model outputs %d",
				cf.ID, len(cf.Vec), oracle.Model().OutDim)
		}
	}

	// Apply.
	if err := oracle.RestoreState(st.Oracle); err != nil {
		return nil, fmt.Errorf("ingest: restore: %w", err)
	}
	if st.Resilient != nil {
		if err := resilient.ImportState(*st.Resilient); err != nil {
			return nil, fmt.Errorf("ingest: restore: %w", err)
		}
	}
	if st.Flaky != nil {
		if err := flaky.ImportState(*st.Flaky); err != nil {
			return nil, fmt.Errorf("ingest: restore: %w", err)
		}
	}
	oracle.Device().Clock().SetElapsed(st.Elapsed())

	in := &Ingestor{
		cfg:        cfg,
		stream:     stream,
		oracle:     oracle,
		merger:     merger,
		nextFrame:  st.NextFrame,
		nextWindow: st.NextWindow,
		prevTc:     prevTc,
		quar:       quarantineFromState(st.Quarantine),
		quarMark:   st.QuarantineMark,
		view:       view,
		hist:       hist,
		pendingOps: pending,
	}
	for _, r := range st.Results {
		in.results = append(in.results, fromRecord(r))
	}
	if view != nil || hist != nil {
		// Rebuild the feed cursors: every box at or before the last
		// committed window's end is already inside the restored view.
		in.fed = make(map[video.TrackID]int)
		in.markFed(in.lastClosedEnd())
	}
	if hist != nil {
		// Re-tier the replayed view at the restored horizon: the segment
		// replay produced a fully hot view, and the session resumes with
		// the same hot/cold partition the checkpointed session held.
		hist.tier.EvictBefore(in.lastClosedEnd() + 1 - video.FrameIndex(hist.horizon))
	}
	return in, nil
}

// markFed rebuilds the view feed cursors after restore, without touching
// the view itself: the restored view state already contains every stream
// box at or before frame end.
func (in *Ingestor) markFed(end video.FrameIndex) {
	for _, t := range in.stream.Snapshot() {
		n := 0
		for n < len(t.Boxes) && t.Boxes[n].Frame <= end {
			n++
		}
		if n > 0 {
			in.fed[t.ID] = n
		}
	}
}

func copyTrack(t *video.Track) *video.Track {
	return &video.Track{ID: t.ID, Boxes: append([]video.BBox(nil), t.Boxes...)}
}

func toRecord(r WindowResult) checkpoint.WindowRecord {
	rec := checkpoint.WindowRecord{
		Window:      r.Window,
		Pairs:       r.Pairs,
		Selected:    append([]video.PairKey(nil), r.Selected...),
		Merged:      append([]video.PairKey(nil), r.Merged...),
		Degraded:    r.Degraded,
		Quarantined: r.Quarantined,
		Events:      append([]core.MergeEvent(nil), r.Events...),
	}
	for _, q := range r.Queries {
		rec.Queries = append(rec.Queries, checkpoint.QueryRecord{Name: q.Name, Deltas: copyDeltas(q.Deltas)})
	}
	return rec
}

func fromRecord(r checkpoint.WindowRecord) WindowResult {
	res := WindowResult{
		Window:      r.Window,
		Pairs:       r.Pairs,
		Selected:    append([]video.PairKey(nil), r.Selected...),
		Merged:      append([]video.PairKey(nil), r.Merged...),
		Degraded:    r.Degraded,
		Quarantined: r.Quarantined,
		Events:      append([]core.MergeEvent(nil), r.Events...),
	}
	for _, q := range r.Queries {
		res.Queries = append(res.Queries, QueryDeltas{Name: q.Name, Deltas: copyDeltas(q.Deltas)})
	}
	return res
}

func copyDeltas(ds []query.Delta) []query.Delta {
	if ds == nil {
		return nil
	}
	out := make([]query.Delta, len(ds))
	for i, d := range ds {
		out[i] = query.Delta{Kind: d.Kind, Row: append([]video.TrackID(nil), d.Row...)}
	}
	return out
}
