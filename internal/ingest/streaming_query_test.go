package ingest

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/dataset"
	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/geom"
	"github.com/tmerge/tmerge/internal/query"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/track"
	"github.com/tmerge/tmerge/internal/video"
)

// Query parameters tuned so every operator's answer is non-trivially
// populated on streamScene (900x700 frames, spans 80..500).
var (
	sqCount   = query.CountQuery{MinFrames: 150}
	sqRegion  = query.RegionQuery{Region: geom.Rect{X: 0, Y: 0, W: 450, H: 700}, MinFrames: 60}
	sqCoOccur = query.CoOccurQuery{GroupSize: 2, MinFrames: 120}
	sqPre     = query.PrecedesQuery{MinGap: 50, MinOverlap: 30}
)

// sqOps builds fresh operators for the standard four subscriptions.
func sqOps() []struct {
	name string
	op   query.Incremental
} {
	return []struct {
		name string
		op   query.Incremental
	}{
		{"count", query.NewIncCount(sqCount)},
		{"region", query.NewIncRegion(sqRegion)},
		{"cooccur", query.NewIncCoOccur(sqCoOccur)},
		{"precedes", query.NewIncPrecedes(sqPre)},
	}
}

// sqBatch answers every standard query over ts in result-row shape,
// indexed like sqOps.
func sqBatch(ts *video.TrackSet) [][][]video.TrackID {
	count := sqCount.Answer(ts)
	region := sqRegion.Answer(ts)
	groups := sqCoOccur.Answer(ts)
	pairs := sqPre.Answer(ts)
	out := make([][][]video.TrackID, 4)
	for _, id := range count {
		out[0] = append(out[0], []video.TrackID{id})
	}
	for _, id := range region {
		out[1] = append(out[1], []video.TrackID{id})
	}
	for _, g := range groups {
		out[2] = append(out[2], []video.TrackID(g))
	}
	for _, p := range pairs {
		out[3] = append(out[3], []video.TrackID{p.First, p.Second})
	}
	return out
}

// deltaFold replays a delta stream from the empty set.
type deltaFold map[string][]video.TrackID

func foldKey(row []video.TrackID) string { return fmt.Sprint(row) }

func (f deltaFold) apply(t *testing.T, deltas []query.Delta) {
	t.Helper()
	for _, d := range deltas {
		key := foldKey(d.Row)
		switch d.Kind {
		case query.Assert:
			if _, dup := f[key]; dup {
				t.Fatalf("delta stream asserts %v twice", d.Row)
			}
			f[key] = d.Row
		case query.Retract:
			if _, held := f[key]; !held {
				t.Fatalf("delta stream retracts unknown row %v", d.Row)
			}
			delete(f, key)
		}
	}
}

func (f deltaFold) equals(rows [][]video.TrackID) bool {
	if len(f) != len(rows) {
		return false
	}
	for _, row := range rows {
		if _, ok := f[foldKey(row)]; !ok {
			return false
		}
	}
	return true
}

// clipSet truncates every track to boxes at or before end — the merged
// state as of a window horizon, for comparing against mid-window cuts
// (the live view only advances at window commits, while MergedTracks
// sees every pushed frame).
func clipSet(ts *video.TrackSet, end video.FrameIndex) *video.TrackSet {
	var out []*video.Track
	for _, tr := range ts.Sorted() {
		if c := video.ClipTrack(tr, 0, end); c != nil {
			out = append(out, c)
		}
	}
	return video.NewTrackSet(out)
}

// sqAlgorithms is the full selection-algorithm matrix of the equivalence
// suite — all five algorithm families.
func sqAlgorithms(seed uint64) map[string]core.Algorithm {
	tcfg := core.DefaultTMergeConfig(seed)
	tcfg.TauMax = 1200
	return map[string]core.Algorithm{
		"baseline": core.NewBaseline(),
		"spatial":  core.NewSpatial(),
		"lcb":      core.NewLCB(1200, seed),
		"ps":       core.NewPS(0.01, seed),
		"tmerge":   core.NewTMerge(tcfg),
	}
}

// driveQueryStream runs one full subscribed streaming session and checks
// the per-session invariants: event-log conservation, registration-order
// delta reporting, fold-reconstruction, and final batch equivalence.
func driveQueryStream(t *testing.T, algo core.Algorithm, workers int) []WindowResult {
	t.Helper()
	v := streamScene(t)
	oracle := reid.NewOracle(reid.NewModel(7, dataset.AppearanceDim), device.NewCPU(device.DefaultCPU))
	in, err := New(track.Tracktor(), oracle, Config{
		WindowLen: 400,
		K:         0.05,
		Algorithm: algo,
		Workers:   workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	ops := sqOps()
	folds := make([]deltaFold, len(ops))
	for i, s := range ops {
		boot, err := in.Subscribe(s.name, s.op)
		if err != nil {
			t.Fatal(err)
		}
		if boot != nil {
			t.Fatalf("%s: bootstrap deltas before any window: %v", s.name, boot)
		}
		folds[i] = deltaFold{}
	}

	// Normal cadence, then a gap that closes several windows in one
	// PushAt (the parallel-executor path), then the Close flush.
	for f := 0; f <= 1000; f++ {
		in.PushAt(video.FrameIndex(f), v.Detections[f])
	}
	last := len(v.Detections) - 1
	in.PushAt(video.FrameIndex(last), v.Detections[last])
	in.Close()

	events := 0
	for _, res := range in.Results() {
		events += len(res.Events)
		if len(res.Queries) != len(ops) {
			t.Fatalf("window %d carries %d query outputs, want %d", res.Window.Index, len(res.Queries), len(ops))
		}
		for i, q := range res.Queries {
			if q.Name != ops[i].name {
				t.Fatalf("window %d query %d named %q, want %q (registration order)", res.Window.Index, i, q.Name, ops[i].name)
			}
			folds[i].apply(t, q.Deltas)
		}
	}
	if events != in.Merger().EventCount() {
		t.Errorf("window results carry %d events, merger logged %d", events, in.Merger().EventCount())
	}

	finals := sqBatch(in.MergedTracks())
	for i, s := range ops {
		got := s.op.Results()
		if !reflect.DeepEqual(got, finals[i]) {
			t.Errorf("%s: incremental results %v, batch answer %v", s.name, got, finals[i])
		}
		if !folds[i].equals(got) {
			t.Errorf("%s: folded window deltas diverge from Results", s.name)
		}
		if in.Operator(s.name) != s.op {
			t.Errorf("%s: Operator handle lost", s.name)
		}
	}
	if got := in.Subscriptions(); !reflect.DeepEqual(got, []string{"count", "region", "cooccur", "precedes"}) {
		t.Errorf("Subscriptions = %v", got)
	}
	return in.Results()
}

// TestStreamingQueryMatchesBatchAcrossAlgorithms is the tentpole
// acceptance suite: for every selection algorithm and worker count, the
// subscribed operators' results after the final window are bit-identical
// to the batch Answers over the merged track set, and the per-window
// delta stream folds back to them.
func TestStreamingQueryMatchesBatchAcrossAlgorithms(t *testing.T) {
	seeds := []uint64{5, 11}
	if testing.Short() {
		seeds = seeds[:1]
	}
	workerCounts := []int{1, runtime.NumCPU(), 4}
	for _, seed := range seeds {
		for name, algo := range sqAlgorithms(seed) {
			if testing.Short() && name != "tmerge" && name != "baseline" {
				continue
			}
			algo := algo
			t.Run(fmt.Sprintf("%s-seed%d", name, seed), func(t *testing.T) {
				ref := driveQueryStream(t, algo, 1)
				seen := map[int]bool{1: true}
				for _, workers := range workerCounts {
					if seen[workers] {
						continue
					}
					seen[workers] = true
					got := driveQueryStream(t, sqAlgorithms(seed)[name], workers)
					if !reflect.DeepEqual(ref, got) {
						t.Errorf("Workers=%d: window results (incl. events and query deltas) diverged from Workers=1", workers)
					}
				}
			})
		}
	}
}

// TestStreamingQueryPerWindowEquivalence pins the stronger per-cut
// guarantee on one configuration: at every window boundary — not just
// the final one — incremental Results equal the batch answer over
// MergedTracks().
func TestStreamingQueryPerWindowEquivalence(t *testing.T) {
	v := streamScene(t)
	in := newIngestor(t, nil)
	ops := sqOps()
	for _, s := range ops {
		if _, err := in.Subscribe(s.name, s.op); err != nil {
			t.Fatal(err)
		}
	}
	check := func(closed []WindowResult) {
		if len(closed) == 0 {
			return
		}
		finals := sqBatch(in.MergedTracks())
		for i, s := range ops {
			if !reflect.DeepEqual(s.op.Results(), finals[i]) {
				t.Fatalf("window %d, %s: incremental diverged from batch", closed[len(closed)-1].Window.Index, s.name)
			}
		}
	}
	for _, dets := range v.Detections {
		check(in.Push(dets))
	}
	check(in.Close())
	if len(in.Results()) < 4 {
		t.Fatalf("scene closed only %d windows", len(in.Results()))
	}
}

// TestSubscribeMidStreamBootstrap: subscribing after windows have closed
// returns the bootstrap assertions — exactly the batch answer at that
// cut, as sorted asserts folding into an empty operator.
func TestSubscribeMidStreamBootstrap(t *testing.T) {
	v := streamScene(t)
	in := newIngestor(t, nil)
	for _, dets := range v.Detections[:1600] {
		in.Push(dets)
	}
	if len(in.Results()) == 0 {
		t.Fatal("no window closed before the mid-stream subscribe")
	}

	op := query.NewIncCount(sqCount)
	boot, err := in.Subscribe("count", op)
	if err != nil {
		t.Fatal(err)
	}
	want := sqCount.Answer(clipSet(in.MergedTracks(), in.lastClosedEnd()))
	if len(boot) != len(want) {
		t.Fatalf("bootstrap emitted %d deltas, batch answer has %d rows", len(boot), len(want))
	}
	for i, d := range boot {
		if d.Kind != query.Assert || len(d.Row) != 1 || d.Row[0] != want[i] {
			t.Fatalf("bootstrap delta %d = %+v, want assert %d", i, d, want[i])
		}
	}

	// The late subscriber then tracks the stream like any other.
	for _, dets := range v.Detections[1600:] {
		in.Push(dets)
	}
	in.Close()
	final := sqCount.Answer(in.MergedTracks())
	if got := op.Answer(); !reflect.DeepEqual(got, final) {
		t.Errorf("late subscriber final answer %v, batch %v", got, final)
	}
}

func TestSubscribeErrors(t *testing.T) {
	in := newIngestor(t, nil)
	if _, err := in.Subscribe("", query.NewIncCount(sqCount)); err == nil {
		t.Error("empty subscription name accepted")
	}
	if _, err := in.Subscribe("count", nil); err == nil {
		t.Error("nil operator accepted")
	}
	if _, err := in.Subscribe("count", query.NewIncCount(sqCount)); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Subscribe("count", query.NewIncRegion(sqRegion)); err == nil {
		t.Error("duplicate subscription name accepted")
	}
}

// TestWindowEventsWithoutSubscriptions: the merge-event log rides on
// every window result even when nothing is subscribed, and the lazy view
// is never materialised for such sessions.
func TestWindowEventsWithoutSubscriptions(t *testing.T) {
	v := streamScene(t)
	in := newIngestor(t, nil)
	for _, dets := range v.Detections {
		in.Push(dets)
	}
	in.Close()
	events := 0
	merged := 0
	for _, res := range in.Results() {
		events += len(res.Events)
		merged += len(res.Merged)
		if res.Queries != nil {
			t.Fatalf("window %d carries query deltas without subscriptions", res.Window.Index)
		}
		for _, ev := range res.Events {
			if err := ev.Validate(); err != nil {
				t.Fatalf("window %d carries invalid event: %v", res.Window.Index, err)
			}
		}
	}
	if events != in.Merger().EventCount() {
		t.Errorf("window results carry %d events, merger logged %d", events, in.Merger().EventCount())
	}
	if events > merged {
		t.Errorf("%d events exceed %d merged pairs (no-ops must not log)", events, merged)
	}
	if in.view != nil {
		t.Error("live view materialised without any subscription")
	}
	if merged == 0 {
		t.Error("scene produced no merges; the event assertions are vacuous")
	}
}

// TestStreamingQueryCheckpointCut: a subscribed session checkpointed and
// restored mid-stream resumes incremental processing without
// recomputation — after re-subscribing (which adopts the checkpointed
// operator state and returns nil deltas), the remainder of the stream
// produces window results, deltas, and final operator state
// bit-identical to the uninterrupted session's.
func TestStreamingQueryCheckpointCut(t *testing.T) {
	v := streamScene(t)
	const cut = 1650

	run := func(p pipeline) *Ingestor {
		t.Helper()
		in, err := New(p.engine, p.oracle, p.cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range sqOps() {
			if _, err := in.Subscribe(s.name, s.op); err != nil {
				t.Fatal(err)
			}
		}
		return in
	}

	// Reference: uninterrupted.
	rp := newPipeline(5, 1)
	ref := run(rp)
	for _, dets := range v.Detections {
		ref.Push(dets)
	}
	ref.Close()

	// Interrupted: run to the cut, checkpoint, crash, restore.
	p1 := newPipeline(5, 1)
	first := run(p1)
	for _, dets := range v.Detections[:cut] {
		first.Push(dets)
	}
	if len(first.Results()) == 0 {
		t.Fatal("no window closed before the cut")
	}
	data, err := first.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	p2 := newPipeline(5, 1)
	resumed, err := Restore(p2.engine, p2.oracle, p2.cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.Subscriptions(); len(got) != 0 {
		t.Fatalf("restored session has active subscriptions %v before re-subscribe", got)
	}

	// A mis-configured re-subscribe is rejected by the parameter echo.
	if _, err := resumed.Subscribe("count", query.NewIncCount(query.CountQuery{MinFrames: sqCount.MinFrames + 1})); err == nil {
		t.Fatal("re-subscribe with different parameters accepted")
	}

	resumedOps := sqOps()
	for _, s := range resumedOps {
		boot, err := resumed.Subscribe(s.name, s.op)
		if err != nil {
			t.Fatal(err)
		}
		if boot != nil {
			t.Fatalf("%s: re-subscribe returned deltas %v, want nil (state adopted)", s.name, boot)
		}
	}
	// The adopted state already answers the stream as of the last
	// committed window.
	preCut := sqBatch(clipSet(resumed.MergedTracks(), resumed.lastClosedEnd()))
	for i, s := range resumedOps {
		if !reflect.DeepEqual(s.op.Results(), preCut[i]) {
			t.Fatalf("%s: restored results diverge from batch at the cut", s.name)
		}
	}

	for _, dets := range v.Detections[cut:] {
		resumed.Push(dets)
	}
	resumed.Close()

	if !reflect.DeepEqual(ref.Results(), resumed.Results()) {
		t.Error("window results (incl. events and query deltas) diverged across the checkpoint cut")
	}
	for i, s := range resumedOps {
		refOp := sqOps()[i]
		if ref.Operator(refOp.name).State().Params != s.op.State().Params {
			t.Fatalf("%s: operator param echo diverged", s.name)
		}
		if !reflect.DeepEqual(ref.Operator(refOp.name).State(), s.op.State()) {
			t.Errorf("%s: final operator state diverged across the checkpoint cut", s.name)
		}
	}

	// A brand-new subscription on the restored session bootstraps from
	// the live view as usual.
	lateQ := query.CountQuery{MinFrames: 100}
	late := query.NewIncCount(lateQ)
	boot, err := resumed.Subscribe("late", late)
	if err != nil {
		t.Fatal(err)
	}
	want := lateQ.Answer(resumed.MergedTracks())
	if len(boot) != len(want) {
		t.Errorf("late bootstrap emitted %d deltas, batch answer has %d rows", len(boot), len(want))
	}
}

// TestCheckpointCarriesUnclaimedSubscriptions: restoring and immediately
// checkpointing again must not drop operator states that were never
// re-subscribed — they ride along as pending states.
func TestCheckpointCarriesUnclaimedSubscriptions(t *testing.T) {
	v := streamScene(t)
	p1 := newPipeline(7, 1)
	in, err := New(p1.engine, p1.oracle, p1.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Subscribe("count", query.NewIncCount(sqCount)); err != nil {
		t.Fatal(err)
	}
	for _, dets := range v.Detections[:1400] {
		in.Push(dets)
	}
	data, err := in.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	// Restore, do NOT re-subscribe, checkpoint again, restore again: the
	// operator state must survive both hops and still be claimable.
	p2 := newPipeline(7, 1)
	mid, err := Restore(p2.engine, p2.oracle, p2.cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := mid.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	p3 := newPipeline(7, 1)
	final, err := Restore(p3.engine, p3.oracle, p3.cfg, data2)
	if err != nil {
		t.Fatal(err)
	}
	op := query.NewIncCount(sqCount)
	boot, err := final.Subscribe("count", op)
	if err != nil {
		t.Fatal(err)
	}
	if boot != nil {
		t.Fatalf("claimed subscription returned bootstrap deltas %v", boot)
	}
	want := sqCount.Answer(clipSet(final.MergedTracks(), final.lastClosedEnd()))
	if got := op.Answer(); !reflect.DeepEqual(got, want) {
		t.Errorf("claimed operator answers %v, batch %v", got, want)
	}
}
