package ingest

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/dataset"
	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/fault"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/synth"
	"github.com/tmerge/tmerge/internal/track"
	"github.com/tmerge/tmerge/internal/video"
)

// streamOutcome captures everything observable about one full streaming
// session, for bit-identity comparison across worker counts.
type streamOutcome struct {
	results    []WindowResult
	quarantine QuarantineReport
	oracle     reid.OracleState
	merged     []*video.Track
	checkpoint []byte
}

// driveStream runs one full ingestion over the scene with the given
// worker count: a normal prefix, then a gap jumping several window
// boundaries at once (so one PushAt closes a multi-window batch — the
// path the parallel executor actually takes), then a Close flush.
func driveStream(t *testing.T, v *synth.Video, workers int, faulty bool) streamOutcome {
	t.Helper()
	var dev device.Device = device.NewCPU(device.DefaultCPU)
	if faulty {
		flaky := fault.NewFlaky(device.NewCPU(device.DefaultCPU), fault.Config{
			Schedule: fault.NewSchedule(fault.Outage{From: 3, To: 7}),
		})
		dev = device.NewResilientDevice(flaky,
			device.RetryPolicy{MaxAttempts: 2, Jitter: -1},
			device.BreakerConfig{Threshold: 2, Cooldown: -1, CooldownRejections: -1},
			11)
	}
	oracle := reid.NewOracle(reid.NewModel(7, dataset.AppearanceDim), dev)
	tcfg := core.DefaultTMergeConfig(5)
	tcfg.TauMax = 1200
	in, err := New(track.Tracktor(), oracle, Config{
		WindowLen: 400,
		K:         0.05,
		Algorithm: core.NewTMerge(tcfg),
		Workers:   workers,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Frames 0..1000: the ordinary one-window-at-a-time cadence.
	for f := 0; f <= 1000; f++ {
		in.PushAt(video.FrameIndex(f), v.Detections[f])
	}
	// One frame far ahead: the gap closes every window whose end the
	// cursor just passed, as one batch.
	last := len(v.Detections) - 1
	in.PushAt(video.FrameIndex(last), v.Detections[last])
	in.Close()

	ckpt, err := in.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	return streamOutcome{
		results:    in.Results(),
		quarantine: in.Quarantine(),
		oracle:     oracle.State(),
		merged:     in.MergedTracks().Sorted(),
		checkpoint: ckpt,
	}
}

// TestIngestParallelEquivalence: the streaming path must be bit-identical
// across worker counts — window results, quarantine ledger, oracle
// stats/cache, merged tracks, and the serialised checkpoint.
func TestIngestParallelEquivalence(t *testing.T) {
	v := streamScene(t)
	for _, faulty := range []bool{false, true} {
		name := "clean"
		if faulty {
			name = "faulty"
		}
		t.Run(name, func(t *testing.T) {
			ref := driveStream(t, v, 1, faulty)
			if n := len(ref.results); n < 8 {
				t.Fatalf("reference run closed %d windows; the scene should close at least 8", n)
			}
			for _, workers := range []int{2, 4} {
				got := driveStream(t, v, workers, faulty)
				if !reflect.DeepEqual(ref.results, got.results) {
					t.Errorf("Workers=%d: window results diverged", workers)
				}
				if !reflect.DeepEqual(ref.quarantine, got.quarantine) {
					t.Errorf("Workers=%d: quarantine ledger diverged", workers)
				}
				if !reflect.DeepEqual(ref.oracle, got.oracle) {
					t.Errorf("Workers=%d: oracle state diverged: ref stats %+v, got %+v",
						workers, ref.oracle.Stats, got.oracle.Stats)
				}
				if !reflect.DeepEqual(ref.merged, got.merged) {
					t.Errorf("Workers=%d: merged track set diverged", workers)
				}
				if !bytes.Equal(ref.checkpoint, got.checkpoint) {
					t.Errorf("Workers=%d: checkpoint bytes diverged", workers)
				}
			}
		})
	}
}

// TestIngestWorkersValidation: negative worker counts are rejected at
// session construction.
func TestIngestWorkersValidation(t *testing.T) {
	oracle := reid.NewOracle(reid.NewModel(7, dataset.AppearanceDim), device.NewCPU(device.DefaultCPU))
	_, err := New(track.Tracktor(), oracle, Config{
		WindowLen: 400,
		K:         0.05,
		Algorithm: core.NewSpatial(),
		Workers:   -2,
	})
	if err == nil {
		t.Fatal("Workers=-2 accepted")
	}
}
