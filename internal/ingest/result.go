package ingest

import (
	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/fault"
)

// Result assembles the session's cumulative outcome as a
// core.PipelineResult, the same shape a batch RunPipeline pass returns,
// so a streaming session can be fingerprinted (core.Fingerprint) and
// compared bit-for-bit against another run of the same frames — the
// serving layer's recovery proof does exactly that. Ground-truth fields
// (Truth, Recall, REC) are zero-valued the same way on every streaming
// session — ingestion never sees GT labels — so they never distinguish
// two runs. Counters (Stats, Virtual, Resilience) are session-absolute:
// they cover everything since the session (or its restored ancestor)
// began, which is what makes a crash-recovered session comparable to an
// uninterrupted one.
//
// Like most of the Ingestor API, Result must not be called concurrently
// with PushAt or Close.
func (in *Ingestor) Result() *core.PipelineResult {
	res := &core.PipelineResult{
		FramesProcessed: in.FramesSeen(),
		REC:             1, // no truth signal; matches the batch convention for zero labelled windows
	}
	for _, r := range in.results {
		if r.Degraded {
			res.DegradedWindows++
		}
		res.Windows = append(res.Windows, core.WindowReport{
			Window:   r.Window,
			Pairs:    r.Pairs,
			Selected: r.Selected,
			Degraded: r.Degraded,
			Events:   r.Events,
		})
	}
	res.Merged = in.MergedTracks()
	res.Stats = in.oracle.Stats()
	res.Virtual = in.oracle.Device().Clock().Elapsed()
	for d := in.oracle.Device(); d != nil; {
		switch v := d.(type) {
		case *device.ResilientDevice:
			res.Resilience = v.Counters()
			d = v.Inner()
		case *fault.Flaky:
			d = v.Inner()
		default:
			d = nil
		}
	}
	return res
}
