// Package ingest implements the online ingestion workflow of §II for
// video *streams*: detections arrive one frame at a time, an online
// tracker runs incrementally, each half-overlapping window is processed
// the moment the stream passes its end, and confirmed polyonymous pairs
// are merged into a continuously maintained identity map. Downstream
// query processing can consult the merged track set at any time — without
// waiting for the stream to end, which may never happen.
package ingest

import (
	"fmt"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/query"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/track"
	"github.com/tmerge/tmerge/internal/trackdb"
	"github.com/tmerge/tmerge/internal/video"
)

// Inspector decides whether a selected candidate pair really is
// polyonymous — the paper's optional human-inspection step, expressed as
// a callback so deployments can wire in an actual review queue, a
// second-stage model, or (in evaluation) the ground truth.
type Inspector func(p *video.Pair) bool

// Config parameterises a streaming ingestion session.
type Config struct {
	// WindowLen is the window length L in frames; it must be positive and
	// even, and should be at least twice the longest expected track.
	WindowLen int
	// K is the candidate proportion per window.
	K float64
	// Algorithm selects the candidates of each closed window.
	Algorithm core.Algorithm
	// Inspect, when non-nil, filters candidates before merging. Nil
	// merges every selected candidate.
	Inspect Inspector
	// QuarantineCap bounds the dead-letter buffer of rejected
	// detections. Zero selects DefaultQuarantineCap; counters are never
	// capped, only the retained detections.
	QuarantineCap int
	// AutoCheckpointEvery, when positive, seals a checkpoint after every
	// N processed windows and hands the bytes to CheckpointSink. Zero
	// disables automatic checkpointing (Checkpoint can still be called
	// explicitly at any time).
	AutoCheckpointEvery int
	// CheckpointSink receives automatic checkpoints (typically writing
	// them to durable storage). Required when AutoCheckpointEvery is
	// positive. A sink error does not stop the stream; it is retained
	// and reported by CheckpointErr.
	CheckpointSink func([]byte) error
	// History, when non-nil, enables the log-structured on-disk history:
	// per-window journaling to segmented log files, the tiered
	// bounded-memory view, manifest-referencing checkpoints, and AsOf
	// time-travel queries. See HistoryConfig.
	History *HistoryConfig
	// Workers bounds the worker pool used when one push (or Close)
	// closes several windows at once — a stream gap jumping multiple
	// window boundaries, or a long tail flushed by Close. 0 selects
	// runtime.NumCPU(), 1 processes windows strictly sequentially;
	// every setting produces bit-identical results (DESIGN.md §10).
	// Windows are always fully processed before the push returns, so
	// checkpoints never observe in-flight window state regardless of
	// Workers. Negative values are rejected by Validate.
	Workers int
}

// Validate reports whether the configuration is usable: WindowLen must be
// positive and even (streams have no whole-video mode), K in (0, 1], and
// Algorithm non-nil. New rejects invalid configurations with this error.
func (cfg Config) Validate() error {
	if cfg.WindowLen <= 0 || cfg.WindowLen%2 != 0 {
		return fmt.Errorf("ingest: window length must be positive and even, got %d", cfg.WindowLen)
	}
	if cfg.Algorithm == nil {
		return fmt.Errorf("ingest: nil selection algorithm")
	}
	if cfg.K <= 0 || cfg.K > 1 {
		return fmt.Errorf("ingest: K must be in (0, 1], got %g", cfg.K)
	}
	if cfg.QuarantineCap < 0 {
		return fmt.Errorf("ingest: quarantine cap must be >= 0, got %d", cfg.QuarantineCap)
	}
	if cfg.AutoCheckpointEvery < 0 {
		return fmt.Errorf("ingest: auto-checkpoint interval must be >= 0, got %d", cfg.AutoCheckpointEvery)
	}
	if cfg.AutoCheckpointEvery > 0 && cfg.CheckpointSink == nil {
		return fmt.Errorf("ingest: auto-checkpointing every %d windows needs a CheckpointSink", cfg.AutoCheckpointEvery)
	}
	if cfg.Workers < 0 {
		return fmt.Errorf("ingest: Workers must be >= 0, got %d", cfg.Workers)
	}
	if cfg.History != nil {
		if err := cfg.History.validate(cfg.WindowLen); err != nil {
			return err
		}
	}
	return nil
}

// WindowResult reports one processed window.
type WindowResult struct {
	Window   video.Window
	Pairs    int
	Selected []video.PairKey
	Merged   []video.PairKey // selected pairs that passed inspection
	// Degraded reports that the ReID device was unavailable while this
	// window was selected and Selected was ranked by the spatial prior
	// alone (see core.SelectWithFallback). The stream keeps flowing; the
	// next window retries the oracle path.
	Degraded bool
	// Quarantined counts detections (and frame-level rejects) quarantined
	// since the previous window closed.
	Quarantined int
	// Events is this window's slice of the merger's ordered union log:
	// the effective unions committing this window caused, in commit
	// order (see core.MergeEvent). Always populated, with or without
	// subscriptions, so downstream consumers can maintain their own
	// materialised views. The slice aliases the merger's append-only log
	// and must not be modified.
	Events []core.MergeEvent
	// Queries carries the incremental output of every subscription for
	// this window, in subscription registration order. Empty when the
	// session has no subscriptions.
	Queries []QueryDeltas
}

// QueryDeltas is one subscription's delta output for one window: the
// result rows the window's track extensions and merges newly qualified
// (asserts) or withdrew (retracts — identity coalescing under a merge).
type QueryDeltas struct {
	Name   string
	Deltas []query.Delta
}

// Ingestor is an online ingestion session. It is not safe for concurrent
// use: PushAt, Close, Subscribe, Checkpoint, and the other accessors
// must all run on one goroutine. Two read-only exceptions exist for
// monitoring: Quarantine() and the resilience/oracle counters reachable
// through Oracle() (reid.Oracle.Stats, device.ResilientDevice.Counters /
// State) are safe to call from another goroutine while a PushAt is in
// flight — the serving layer's health snapshots poll them exactly that
// way.
type Ingestor struct {
	cfg    Config
	stream *track.Stream
	oracle *reid.Oracle
	merger *core.Merger

	nextFrame  video.FrameIndex
	nextWindow int
	prevTc     []*video.Track
	results    []WindowResult

	quar     *quarantine
	quarMark int // quarantine total at the last window close

	// view is the live materialised merged-track view, created lazily by
	// the first Subscribe (or by Restore) and advanced at every window
	// commit: track extensions first, then the window's merge events.
	// Nil in history mode, where hist.tier plays its role.
	view *trackdb.LiveView
	// hist is the log-structured history machinery (on-disk journal +
	// tiered view), present iff cfg.History is set. Created eagerly at
	// New/Restore: the journal must cover every window from 0.
	hist *history
	// fed counts, per raw stream track, how many of its boxes have been
	// folded into the view — the incremental feed cursor.
	fed  map[video.TrackID]int
	subs []subscription
	// pendingOps parks checkpointed operator states between Restore and
	// the re-Subscribe that claims them by name.
	pendingOps map[string]query.OperatorState

	windowsSinceCkpt int
	// ckptCompactions is hist's compaction count at the last sealed
	// checkpoint; a newer compaction forces the next auto-checkpoint
	// regardless of the window cadence (see maybeAutoCheckpoint).
	ckptCompactions int
	ckptErr         error
}

// subscription is one registered incremental query operator.
type subscription struct {
	name string
	op   query.Incremental
}

// New returns an ingestion session over the given tracker engine, oracle,
// and configuration.
func New(engine *track.Engine, oracle *reid.Oracle, cfg Config) (*Ingestor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	in := &Ingestor{
		cfg:    cfg,
		stream: engine.NewStream(),
		oracle: oracle,
		merger: core.NewMerger(),
		quar:   newQuarantine(cfg.QuarantineCap),
	}
	if cfg.History != nil {
		h, err := newHistory(cfg)
		if err != nil {
			return nil, err
		}
		in.hist = h
		in.fed = make(map[video.TrackID]int)
	}
	return in, nil
}

// Push consumes the next frame of detections and returns the results of
// any windows the stream just closed (usually zero or one). Frames are
// implicitly numbered 0, 1, 2, ...; Push(dets) is PushAt(FramesSeen(),
// dets).
func (in *Ingestor) Push(dets []video.BBox) []WindowResult {
	return in.PushAt(in.nextFrame, dets)
}

// PushAt consumes the detections of frame f and returns the results of
// any windows the stream just closed (usually zero or one).
//
// Frame index semantics: the stream cursor only moves forward. A frame
// index equal to the last accepted one is a duplicate — the whole frame
// is quarantined (first write wins) and the cursor stays put. An index
// before the last accepted one has regressed — likewise quarantined
// whole. An index beyond the cursor is a gap: it is accepted, the
// skipped frames count as misses for every open track hypothesis, and
// the cursor jumps past it. Within an accepted frame, each detection is
// vetted individually (finite geometry, positive size, matching frame
// index, finite observation); hostile detections are quarantined with a
// per-reason counter while the rest of the frame proceeds, so one broken
// detector output cannot poison tracker state or stall the stream.
func (in *Ingestor) PushAt(f video.FrameIndex, dets []video.BBox) []WindowResult {
	switch {
	case f < 0 || f < in.nextFrame-1:
		in.quar.addFrame(f, dets, ReasonFrameRegressed)
		return nil
	case in.nextFrame > 0 && f == in.nextFrame-1:
		in.quar.addFrame(f, dets, ReasonFrameDuplicate)
		return nil
	}

	accepted := make([]video.BBox, 0, len(dets))
	for _, b := range dets {
		if reason, ok := classifyDetection(f, b); !ok {
			in.quar.add(f, b, reason)
		} else {
			accepted = append(accepted, b)
		}
	}

	in.nextFrame = f + 1
	in.stream.Step(f, accepted)

	var pend []video.Window
	for {
		w := in.pendingWindow()
		if f < w.End {
			break
		}
		pend = append(pend, w)
		in.nextWindow++
	}
	closed := in.processWindows(pend)
	in.maybeAutoCheckpoint(len(closed))
	return closed
}

// maybeAutoCheckpoint seals and emits a checkpoint when enough windows
// have closed since the last one. It runs after the window loop, so a
// checkpoint always captures a consistent between-frames state. A
// history compaction forces the checkpoint regardless of the window
// cadence: compaction folds the log positions earlier checkpoints
// reference into the base snapshot, so the retained checkpoint must be
// re-sealed in the same push before anything can crash between them.
func (in *Ingestor) maybeAutoCheckpoint(closed int) {
	if in.cfg.AutoCheckpointEvery <= 0 || closed == 0 {
		return
	}
	in.windowsSinceCkpt += closed
	compacted := in.hist != nil && in.hist.compactions > in.ckptCompactions
	if in.windowsSinceCkpt < in.cfg.AutoCheckpointEvery && !compacted {
		return
	}
	in.windowsSinceCkpt = 0
	data, err := in.Checkpoint()
	if err == nil {
		err = in.cfg.CheckpointSink(data)
	}
	if err != nil {
		in.ckptErr = err
	}
}

// CheckpointErr returns the most recent automatic-checkpoint failure
// (sealing or sink), or nil. Checkpoint failures do not stop the stream;
// callers that care about durability should poll this.
func (in *Ingestor) CheckpointErr() error { return in.ckptErr }

// Close flushes the final partial window (if any frames remain beyond the
// last processed window's first half) and returns its results.
func (in *Ingestor) Close() []WindowResult {
	var pend []video.Window
	for {
		w := in.pendingWindow()
		if w.Start >= in.nextFrame {
			break
		}
		if w.End > in.nextFrame-1 {
			w.End = in.nextFrame - 1
		}
		pend = append(pend, w)
		in.nextWindow++
	}
	return in.processWindows(pend)
}

// pendingWindow returns the next unprocessed window.
func (in *Ingestor) pendingWindow() video.Window {
	half := in.cfg.WindowLen / 2
	start := video.FrameIndex(in.nextWindow * half)
	return video.Window{
		Index:   in.nextWindow,
		Start:   start,
		End:     start + video.FrameIndex(in.cfg.WindowLen) - 1,
		Nominal: in.cfg.WindowLen,
	}
}

// windowTracks snapshots Tc for one window: tracks starting in the
// window's first half, clipped to the window. Snapshot includes
// still-active tracks; their boxes beyond w.End are excluded by
// clipping, so the view is stable.
func (in *Ingestor) windowTracks(w video.Window) []*video.Track {
	var cur []*video.Track
	for _, t := range sortTracks(in.stream.Snapshot()) {
		if t.StartFrame() < w.Start || t.StartFrame() > w.FirstHalfEnd() {
			continue
		}
		if c := video.ClipTrack(t, w.Start, w.End); c != nil {
			cur = append(cur, c)
		}
	}
	return cur
}

// processWindows runs the batch of windows one push (or Close) just
// closed. The usual batch size is one; gaps that jump several window
// boundaries and the Close flush can close more, and those batches run
// on the parallel window executor when cfg.Workers allows (selection is
// speculated concurrently, then certified against the real oracle in
// canonical window order — see core.SpeculateSelection). Both paths are
// bit-identical; all windows are fully committed before this returns,
// so a checkpoint taken afterwards never captures in-flight state.
func (in *Ingestor) processWindows(ws []video.Window) []WindowResult {
	if len(ws) == 0 {
		return nil
	}

	// Window inputs are prepared sequentially either way: the Tc /
	// previous-Tc chain and the quarantine-delta attribution are
	// inherently ordered.
	type windowInput struct {
		w           video.Window
		ps          *video.PairSet
		quarantined int
	}
	inputs := make([]windowInput, len(ws))
	for i, w := range ws {
		cur := in.windowTracks(w)
		total := in.quar.totalCount()
		inputs[i] = windowInput{
			w:           w,
			ps:          video.BuildPairSet(w, cur, in.prevTc),
			quarantined: total - in.quarMark,
		}
		in.quarMark = total
		in.prevTc = cur
	}

	commit := func(i int, selected []video.PairKey, degraded bool) WindowResult {
		wi := inputs[i]
		res := WindowResult{Window: wi.w, Pairs: wi.ps.Len(), Quarantined: wi.quarantined}
		seq := in.merger.EventCount()
		if wi.ps.Len() > 0 {
			res.Selected, res.Degraded = selected, degraded
			for _, key := range res.Selected {
				if in.cfg.Inspect != nil && !in.cfg.Inspect(wi.ps.Get(key)) {
					continue
				}
				in.merger.Merge(key)
				res.Merged = append(res.Merged, key)
			}
		}
		res.Events = in.merger.EventsSince(seq)
		if len(res.Events) == 0 {
			// Normalise event-free windows to a nil slice: EventsSince
			// aliases the retained log, whose nil-ness depends on whether
			// TrimEvents has dropped a sealed prefix — window results must
			// not expose that difference.
			res.Events = nil
		}
		switch {
		case in.hist != nil:
			h := in.hist
			h.beginWindow()
			in.feedBoxes(wi.w.End)
			if err := h.tier.ApplyEvents(res.Events); err != nil {
				// Unlike the plain view below, the tiered view can fail on
				// I/O (cold-store paging during rehydration); that degrades
				// the session instead of crashing it.
				h.fail(err)
			}
			changed, removed := h.tier.Flush()
			for _, s := range in.subs {
				res.Queries = append(res.Queries, QueryDeltas{Name: s.name, Deltas: s.op.Apply(h.tier, changed, removed)})
			}
			h.commitWindow(in.merger, wi.w, res.Events)
		case in.view != nil:
			in.feedBoxes(wi.w.End)
			if err := in.view.ApplyEvents(res.Events); err != nil {
				// Every merged track starts in this window's first half, so
				// the feed above has shown the view both sides of every
				// event; a failure here is a broken invariant, not input.
				panic(fmt.Sprintf("ingest: live view diverged from merger: %v", err))
			}
			changed, removed := in.view.Flush()
			for _, s := range in.subs {
				res.Queries = append(res.Queries, QueryDeltas{Name: s.name, Deltas: s.op.Apply(in.view, changed, removed)})
			}
		}
		in.results = append(in.results, res)
		return res
	}

	out := make([]WindowResult, len(ws))
	if workers := core.EffectiveWorkers(in.cfg.Workers); workers > 1 && len(ws) > 1 {
		store := reid.NewFeatureStore()
		core.ForEachOrderedBatch(len(inputs), workers,
			func(i int) *core.WindowSelection {
				if inputs[i].ps.Len() == 0 {
					return nil
				}
				return core.SpeculateSelection(in.cfg.Algorithm, inputs[i].ps, in.oracle, store, in.cfg.K)
			},
			func(start int, sels []*core.WindowSelection) {
				selected, degraded := core.CommitSelections(in.oracle, store, sels)
				for k := range sels {
					out[start+k] = commit(start+k, selected[k], degraded[k])
				}
			})
	} else {
		for i := range inputs {
			var selected []video.PairKey
			var degraded bool
			if inputs[i].ps.Len() > 0 {
				selected, degraded = core.SelectWithFallback(in.cfg.Algorithm, inputs[i].ps, in.oracle, in.cfg.K)
			}
			out[i] = commit(i, selected, degraded)
		}
	}
	return out
}

// Subscribe registers an incremental query operator under a unique name.
// From the next closed window on, every WindowResult carries the
// operator's deltas under that name (WindowResult.Queries), and at every
// window boundary the operator's Results equal the batch answer over
// MergedTracks() — incremental and batch are interchangeable at any cut.
//
// Subscribing mid-stream is allowed: the session materialises the live
// view up to the last committed window and the returned deltas are the
// bootstrap assertions folding that state into the empty operator (nil
// when no window has closed yet). After Restore, a subscription whose
// name matches a checkpointed one adopts the checkpointed operator state
// instead; the operator must be configured identically (RestoreState
// verifies the parameter echo) and the returned deltas are nil, because
// the restored session already holds those results.
func (in *Ingestor) Subscribe(name string, op query.Incremental) ([]query.Delta, error) {
	if name == "" {
		return nil, fmt.Errorf("ingest: subscription name must be non-empty")
	}
	if op == nil {
		return nil, fmt.Errorf("ingest: nil operator for subscription %q", name)
	}
	for _, s := range in.subs {
		if s.name == name {
			return nil, fmt.Errorf("ingest: duplicate subscription %q", name)
		}
	}
	in.ensureView()
	if st, ok := in.pendingOps[name]; ok {
		if err := op.RestoreState(st); err != nil {
			return nil, fmt.Errorf("ingest: subscription %q: %w", name, err)
		}
		delete(in.pendingOps, name)
		in.subs = append(in.subs, subscription{name: name, op: op})
		return nil, nil
	}
	v := in.queryView()
	deltas := op.Apply(v, v.IDs(), nil)
	in.subs = append(in.subs, subscription{name: name, op: op})
	return deltas, nil
}

// Subscriptions returns the registered subscription names in
// registration order.
func (in *Ingestor) Subscriptions() []string {
	out := make([]string, len(in.subs))
	for i, s := range in.subs {
		out[i] = s.name
	}
	return out
}

// Operator returns the incremental operator registered under name (nil
// when no such subscription exists) — the handle for reading live
// Results without waiting for window deltas.
func (in *Ingestor) Operator(name string) query.Incremental {
	for _, s := range in.subs {
		if s.name == name {
			return s.op
		}
	}
	return nil
}

// queryView returns the track view query operators run against: the
// tiered view in history mode, the plain live view otherwise (nil when
// neither exists yet).
func (in *Ingestor) queryView() query.TrackView {
	if in.hist != nil {
		return in.hist.tier
	}
	if in.view == nil {
		return nil
	}
	return in.view
}

// ensureView creates the live view on first use and backfills it to the
// session's current committed state: every stream box up to the last
// closed window's end, then the full merge-event log. History sessions
// maintain their (tiered) view from window 0, so this is a no-op there.
func (in *Ingestor) ensureView() {
	if in.view != nil || in.hist != nil {
		return
	}
	in.view = trackdb.NewLiveView()
	in.fed = make(map[video.TrackID]int)
	if end := in.lastClosedEnd(); end >= 0 {
		in.feedBoxes(end)
	}
	if err := in.view.ApplyEvents(in.merger.Events()); err != nil {
		panic(fmt.Sprintf("ingest: live view diverged from merger: %v", err))
	}
	in.view.Flush()
}

// feedBoxes advances the live view to frame end: every stream box with
// Frame <= end not yet folded in is applied as a track extension, in
// frame order within each track. The fed cursors make the walk
// incremental — each box is fed exactly once across the session.
func (in *Ingestor) feedBoxes(end video.FrameIndex) {
	for _, t := range sortTracks(in.stream.Snapshot()) {
		n := in.fed[t.ID]
		for n < len(t.Boxes) && t.Boxes[n].Frame <= end {
			if in.hist != nil {
				in.hist.extend(t.ID, t.Boxes[n])
			} else {
				in.view.Extend(t.ID, t.Boxes[n])
			}
			n++
		}
		if n != in.fed[t.ID] {
			in.fed[t.ID] = n
		}
	}
}

// lastClosedEnd returns the End of the most recently committed window,
// or -1 when no window has closed. Window ends are non-decreasing (the
// Close clip never cuts below an already-committed end), so this is the
// view's feed horizon.
func (in *Ingestor) lastClosedEnd() video.FrameIndex {
	if len(in.results) == 0 {
		return -1
	}
	return in.results[len(in.results)-1].Window.End
}

// Results returns every window processed so far.
func (in *Ingestor) Results() []WindowResult { return in.results }

// Merger exposes the accumulated identity map.
func (in *Ingestor) Merger() *core.Merger { return in.merger }

// Oracle exposes the session's ReID oracle (for work accounting).
func (in *Ingestor) Oracle() *reid.Oracle { return in.oracle }

// MergedTracks returns the current track state with merged identities
// applied — the metadata a downstream query engine would consume.
func (in *Ingestor) MergedTracks() *video.TrackSet {
	return in.merger.Apply(video.NewTrackSet(sortTracks(in.stream.Snapshot())))
}

// FramesSeen returns how many frames the stream cursor has passed (the
// next expected frame index; gaps count as seen).
func (in *Ingestor) FramesSeen() int { return int(in.nextFrame) }

// Quarantine returns a detached snapshot of the quarantine ledger:
// per-reason reject counters and the retained dead-letter buffer.
// Unlike the rest of the Ingestor API it is safe to call concurrently
// with an in-flight PushAt (the ledger carries its own lock), so health
// monitors can poll it from another goroutine.
func (in *Ingestor) Quarantine() QuarantineReport { return in.quar.report() }

func sortTracks(ts []*video.Track) []*video.Track {
	// Snapshot order is already deterministic (finished then active, in
	// creation order); normalise to the canonical sort used elsewhere.
	set := video.NewTrackSet(ts)
	return set.Sorted()
}
