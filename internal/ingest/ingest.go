// Package ingest implements the online ingestion workflow of §II for
// video *streams*: detections arrive one frame at a time, an online
// tracker runs incrementally, each half-overlapping window is processed
// the moment the stream passes its end, and confirmed polyonymous pairs
// are merged into a continuously maintained identity map. Downstream
// query processing can consult the merged track set at any time — without
// waiting for the stream to end, which may never happen.
package ingest

import (
	"fmt"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/track"
	"github.com/tmerge/tmerge/internal/video"
)

// Inspector decides whether a selected candidate pair really is
// polyonymous — the paper's optional human-inspection step, expressed as
// a callback so deployments can wire in an actual review queue, a
// second-stage model, or (in evaluation) the ground truth.
type Inspector func(p *video.Pair) bool

// Config parameterises a streaming ingestion session.
type Config struct {
	// WindowLen is the window length L in frames; it must be positive and
	// even, and should be at least twice the longest expected track.
	WindowLen int
	// K is the candidate proportion per window.
	K float64
	// Algorithm selects the candidates of each closed window.
	Algorithm core.Algorithm
	// Inspect, when non-nil, filters candidates before merging. Nil
	// merges every selected candidate.
	Inspect Inspector
	// QuarantineCap bounds the dead-letter buffer of rejected
	// detections. Zero selects DefaultQuarantineCap; counters are never
	// capped, only the retained detections.
	QuarantineCap int
	// AutoCheckpointEvery, when positive, seals a checkpoint after every
	// N processed windows and hands the bytes to CheckpointSink. Zero
	// disables automatic checkpointing (Checkpoint can still be called
	// explicitly at any time).
	AutoCheckpointEvery int
	// CheckpointSink receives automatic checkpoints (typically writing
	// them to durable storage). Required when AutoCheckpointEvery is
	// positive. A sink error does not stop the stream; it is retained
	// and reported by CheckpointErr.
	CheckpointSink func([]byte) error
	// Workers bounds the worker pool used when one push (or Close)
	// closes several windows at once — a stream gap jumping multiple
	// window boundaries, or a long tail flushed by Close. 0 selects
	// runtime.NumCPU(), 1 processes windows strictly sequentially;
	// every setting produces bit-identical results (DESIGN.md §10).
	// Windows are always fully processed before the push returns, so
	// checkpoints never observe in-flight window state regardless of
	// Workers. Negative values are rejected by Validate.
	Workers int
}

// Validate reports whether the configuration is usable: WindowLen must be
// positive and even (streams have no whole-video mode), K in (0, 1], and
// Algorithm non-nil. New rejects invalid configurations with this error.
func (cfg Config) Validate() error {
	if cfg.WindowLen <= 0 || cfg.WindowLen%2 != 0 {
		return fmt.Errorf("ingest: window length must be positive and even, got %d", cfg.WindowLen)
	}
	if cfg.Algorithm == nil {
		return fmt.Errorf("ingest: nil selection algorithm")
	}
	if cfg.K <= 0 || cfg.K > 1 {
		return fmt.Errorf("ingest: K must be in (0, 1], got %g", cfg.K)
	}
	if cfg.QuarantineCap < 0 {
		return fmt.Errorf("ingest: quarantine cap must be >= 0, got %d", cfg.QuarantineCap)
	}
	if cfg.AutoCheckpointEvery < 0 {
		return fmt.Errorf("ingest: auto-checkpoint interval must be >= 0, got %d", cfg.AutoCheckpointEvery)
	}
	if cfg.AutoCheckpointEvery > 0 && cfg.CheckpointSink == nil {
		return fmt.Errorf("ingest: auto-checkpointing every %d windows needs a CheckpointSink", cfg.AutoCheckpointEvery)
	}
	if cfg.Workers < 0 {
		return fmt.Errorf("ingest: Workers must be >= 0, got %d", cfg.Workers)
	}
	return nil
}

// WindowResult reports one processed window.
type WindowResult struct {
	Window   video.Window
	Pairs    int
	Selected []video.PairKey
	Merged   []video.PairKey // selected pairs that passed inspection
	// Degraded reports that the ReID device was unavailable while this
	// window was selected and Selected was ranked by the spatial prior
	// alone (see core.SelectWithFallback). The stream keeps flowing; the
	// next window retries the oracle path.
	Degraded bool
	// Quarantined counts detections (and frame-level rejects) quarantined
	// since the previous window closed.
	Quarantined int
}

// Ingestor is an online ingestion session. It is not safe for concurrent
// use.
type Ingestor struct {
	cfg    Config
	stream *track.Stream
	oracle *reid.Oracle
	merger *core.Merger

	nextFrame  video.FrameIndex
	nextWindow int
	prevTc     []*video.Track
	results    []WindowResult

	quar     *quarantine
	quarMark int // quarantine total at the last window close

	windowsSinceCkpt int
	ckptErr          error
}

// New returns an ingestion session over the given tracker engine, oracle,
// and configuration.
func New(engine *track.Engine, oracle *reid.Oracle, cfg Config) (*Ingestor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Ingestor{
		cfg:    cfg,
		stream: engine.NewStream(),
		oracle: oracle,
		merger: core.NewMerger(),
		quar:   newQuarantine(cfg.QuarantineCap),
	}, nil
}

// Push consumes the next frame of detections and returns the results of
// any windows the stream just closed (usually zero or one). Frames are
// implicitly numbered 0, 1, 2, ...; Push(dets) is PushAt(FramesSeen(),
// dets).
func (in *Ingestor) Push(dets []video.BBox) []WindowResult {
	return in.PushAt(in.nextFrame, dets)
}

// PushAt consumes the detections of frame f and returns the results of
// any windows the stream just closed (usually zero or one).
//
// Frame index semantics: the stream cursor only moves forward. A frame
// index equal to the last accepted one is a duplicate — the whole frame
// is quarantined (first write wins) and the cursor stays put. An index
// before the last accepted one has regressed — likewise quarantined
// whole. An index beyond the cursor is a gap: it is accepted, the
// skipped frames count as misses for every open track hypothesis, and
// the cursor jumps past it. Within an accepted frame, each detection is
// vetted individually (finite geometry, positive size, matching frame
// index, finite observation); hostile detections are quarantined with a
// per-reason counter while the rest of the frame proceeds, so one broken
// detector output cannot poison tracker state or stall the stream.
func (in *Ingestor) PushAt(f video.FrameIndex, dets []video.BBox) []WindowResult {
	switch {
	case f < 0 || f < in.nextFrame-1:
		in.quar.addFrame(f, dets, ReasonFrameRegressed)
		return nil
	case in.nextFrame > 0 && f == in.nextFrame-1:
		in.quar.addFrame(f, dets, ReasonFrameDuplicate)
		return nil
	}

	accepted := make([]video.BBox, 0, len(dets))
	for _, b := range dets {
		if reason, ok := classifyDetection(f, b); !ok {
			in.quar.add(f, b, reason)
		} else {
			accepted = append(accepted, b)
		}
	}

	in.nextFrame = f + 1
	in.stream.Step(f, accepted)

	var pend []video.Window
	for {
		w := in.pendingWindow()
		if f < w.End {
			break
		}
		pend = append(pend, w)
		in.nextWindow++
	}
	closed := in.processWindows(pend)
	in.maybeAutoCheckpoint(len(closed))
	return closed
}

// maybeAutoCheckpoint seals and emits a checkpoint when enough windows
// have closed since the last one. It runs after the window loop, so a
// checkpoint always captures a consistent between-frames state.
func (in *Ingestor) maybeAutoCheckpoint(closed int) {
	if in.cfg.AutoCheckpointEvery <= 0 || closed == 0 {
		return
	}
	in.windowsSinceCkpt += closed
	if in.windowsSinceCkpt < in.cfg.AutoCheckpointEvery {
		return
	}
	in.windowsSinceCkpt = 0
	data, err := in.Checkpoint()
	if err == nil {
		err = in.cfg.CheckpointSink(data)
	}
	if err != nil {
		in.ckptErr = err
	}
}

// CheckpointErr returns the most recent automatic-checkpoint failure
// (sealing or sink), or nil. Checkpoint failures do not stop the stream;
// callers that care about durability should poll this.
func (in *Ingestor) CheckpointErr() error { return in.ckptErr }

// Close flushes the final partial window (if any frames remain beyond the
// last processed window's first half) and returns its results.
func (in *Ingestor) Close() []WindowResult {
	var pend []video.Window
	for {
		w := in.pendingWindow()
		if w.Start >= in.nextFrame {
			break
		}
		if w.End > in.nextFrame-1 {
			w.End = in.nextFrame - 1
		}
		pend = append(pend, w)
		in.nextWindow++
	}
	return in.processWindows(pend)
}

// pendingWindow returns the next unprocessed window.
func (in *Ingestor) pendingWindow() video.Window {
	half := in.cfg.WindowLen / 2
	start := video.FrameIndex(in.nextWindow * half)
	return video.Window{
		Index:   in.nextWindow,
		Start:   start,
		End:     start + video.FrameIndex(in.cfg.WindowLen) - 1,
		Nominal: in.cfg.WindowLen,
	}
}

// windowTracks snapshots Tc for one window: tracks starting in the
// window's first half, clipped to the window. Snapshot includes
// still-active tracks; their boxes beyond w.End are excluded by
// clipping, so the view is stable.
func (in *Ingestor) windowTracks(w video.Window) []*video.Track {
	var cur []*video.Track
	for _, t := range sortTracks(in.stream.Snapshot()) {
		if t.StartFrame() < w.Start || t.StartFrame() > w.FirstHalfEnd() {
			continue
		}
		if c := video.ClipTrack(t, w.Start, w.End); c != nil {
			cur = append(cur, c)
		}
	}
	return cur
}

// processWindows runs the batch of windows one push (or Close) just
// closed. The usual batch size is one; gaps that jump several window
// boundaries and the Close flush can close more, and those batches run
// on the parallel window executor when cfg.Workers allows (selection is
// speculated concurrently, then certified against the real oracle in
// canonical window order — see core.SpeculateSelection). Both paths are
// bit-identical; all windows are fully committed before this returns,
// so a checkpoint taken afterwards never captures in-flight state.
func (in *Ingestor) processWindows(ws []video.Window) []WindowResult {
	if len(ws) == 0 {
		return nil
	}

	// Window inputs are prepared sequentially either way: the Tc /
	// previous-Tc chain and the quarantine-delta attribution are
	// inherently ordered.
	type windowInput struct {
		w           video.Window
		ps          *video.PairSet
		quarantined int
	}
	inputs := make([]windowInput, len(ws))
	for i, w := range ws {
		cur := in.windowTracks(w)
		inputs[i] = windowInput{
			w:           w,
			ps:          video.BuildPairSet(w, cur, in.prevTc),
			quarantined: in.quar.total - in.quarMark,
		}
		in.quarMark = in.quar.total
		in.prevTc = cur
	}

	commit := func(i int, selected []video.PairKey, degraded bool) WindowResult {
		wi := inputs[i]
		res := WindowResult{Window: wi.w, Pairs: wi.ps.Len(), Quarantined: wi.quarantined}
		if wi.ps.Len() > 0 {
			res.Selected, res.Degraded = selected, degraded
			for _, key := range res.Selected {
				if in.cfg.Inspect != nil && !in.cfg.Inspect(wi.ps.Get(key)) {
					continue
				}
				in.merger.Merge(key)
				res.Merged = append(res.Merged, key)
			}
		}
		in.results = append(in.results, res)
		return res
	}

	out := make([]WindowResult, len(ws))
	if workers := core.EffectiveWorkers(in.cfg.Workers); workers > 1 && len(ws) > 1 {
		store := reid.NewFeatureStore()
		core.ForEachOrdered(len(inputs), workers,
			func(i int) *core.WindowSelection {
				if inputs[i].ps.Len() == 0 {
					return nil
				}
				return core.SpeculateSelection(in.cfg.Algorithm, inputs[i].ps, in.oracle, store, in.cfg.K)
			},
			func(i int, sel *core.WindowSelection) {
				var selected []video.PairKey
				var degraded bool
				if sel != nil {
					selected, degraded = sel.Commit(in.oracle, store)
				}
				out[i] = commit(i, selected, degraded)
			})
	} else {
		for i := range inputs {
			var selected []video.PairKey
			var degraded bool
			if inputs[i].ps.Len() > 0 {
				selected, degraded = core.SelectWithFallback(in.cfg.Algorithm, inputs[i].ps, in.oracle, in.cfg.K)
			}
			out[i] = commit(i, selected, degraded)
		}
	}
	return out
}

// Results returns every window processed so far.
func (in *Ingestor) Results() []WindowResult { return in.results }

// Merger exposes the accumulated identity map.
func (in *Ingestor) Merger() *core.Merger { return in.merger }

// Oracle exposes the session's ReID oracle (for work accounting).
func (in *Ingestor) Oracle() *reid.Oracle { return in.oracle }

// MergedTracks returns the current track state with merged identities
// applied — the metadata a downstream query engine would consume.
func (in *Ingestor) MergedTracks() *video.TrackSet {
	return in.merger.Apply(video.NewTrackSet(sortTracks(in.stream.Snapshot())))
}

// FramesSeen returns how many frames the stream cursor has passed (the
// next expected frame index; gaps count as seen).
func (in *Ingestor) FramesSeen() int { return int(in.nextFrame) }

// Quarantine returns a detached snapshot of the quarantine ledger:
// per-reason reject counters and the retained dead-letter buffer.
func (in *Ingestor) Quarantine() QuarantineReport { return in.quar.report() }

func sortTracks(ts []*video.Track) []*video.Track {
	// Snapshot order is already deterministic (finished then active, in
	// creation order); normalise to the canonical sort used elsewhere.
	set := video.NewTrackSet(ts)
	return set.Sorted()
}
