package ingest

import (
	"fmt"

	"github.com/tmerge/tmerge/internal/checkpoint"
	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/histlog"
	"github.com/tmerge/tmerge/internal/trackdb"
	"github.com/tmerge/tmerge/internal/video"
)

// HistoryConfig enables the log-structured on-disk history of a
// session: every committed window's view feed (track extensions plus
// merge events) is journaled to segmented, checksummed log files under
// Dir, the in-memory view is tiered so only tracks alive within the
// hot horizon keep their full per-frame state resident, checkpoints
// reference the sealed-log position instead of embedding the view, and
// AsOf serves time-travel queries by replaying segments.
type HistoryConfig struct {
	// Dir is the history directory (one per session; the serving layer
	// derives a per-stream directory under its history root). Required.
	Dir string
	// HotHorizon is the tiering horizon in frames: canonical tracks
	// whose presence interval ended more than this many frames before
	// the newest committed window's end are evicted to cold summaries.
	// Zero selects 4×WindowLen; explicit values below 2×WindowLen are
	// rejected — merges reach back up to 1.5 windows, and a horizon that
	// forces the steady-state merge path through disk rehydration is a
	// misconfiguration, not a tuning choice.
	HotHorizon int
	// WindowsPerSegment is the log's auto-seal threshold (window entries
	// per sealed segment). Zero selects histlog.DefaultWindowsPerSegment.
	WindowsPerSegment int
	// CompactEvery, when positive, folds sealed segments into a single
	// base snapshot whenever this many sealed raw segments accumulate.
	// Compaction trades time-travel range for replay cost: frames before
	// the base become unreachable to AsOf (the retention boundary), and
	// restore replays only the short raw tail. Zero never compacts.
	CompactEvery int
}

// horizonFrames resolves the configured horizon against the window
// length.
func (hc *HistoryConfig) horizonFrames(windowLen int) int {
	if hc.HotHorizon > 0 {
		return hc.HotHorizon
	}
	return 4 * windowLen
}

// validate is HistoryConfig's part of Config.Validate.
func (hc *HistoryConfig) validate(windowLen int) error {
	if hc.Dir == "" {
		return fmt.Errorf("ingest: history enabled with empty directory")
	}
	if hc.HotHorizon != 0 && hc.HotHorizon < 2*windowLen {
		return fmt.Errorf("ingest: history hot horizon %d is below 2×WindowLen = %d", hc.HotHorizon, 2*windowLen)
	}
	if hc.WindowsPerSegment < 0 {
		return fmt.Errorf("ingest: history windows per segment must be >= 0, got %d", hc.WindowsPerSegment)
	}
	if hc.CompactEvery < 0 {
		return fmt.Errorf("ingest: history compaction interval must be >= 0, got %d", hc.CompactEvery)
	}
	return nil
}

// history is a session's live history machinery: the on-disk log, the
// tiered view fed in lockstep with it, and the first I/O failure (the
// log and the in-memory state can no longer be guaranteed to agree, so
// checkpoints are refused until the session is rebuilt).
type history struct {
	cfg     HistoryConfig
	horizon int
	log     *histlog.Log
	tier    *trackdb.TieredView
	scratch []histlog.Extend // per-window journal buffer, reused
	// compactions counts successful log compactions. A compaction moves
	// the retention boundary, so any checkpoint sealed before it can no
	// longer be restored (its log position was folded into the base);
	// the auto-checkpoint trigger compares this against the count at the
	// last seal to re-checkpoint promptly after every compaction.
	compactions int
	err         error
}

// fail records the first history failure; later ones are dropped.
func (h *history) fail(err error) {
	if h.err == nil {
		h.err = err
	}
}

// newHistory opens the session's history log (wiping any previous
// session's segments in the directory — a fresh session starts at
// window 0) and wraps a fresh tiered view over it.
func newHistory(cfg Config) (*history, error) {
	hc := *cfg.History
	log, err := histlog.Open(hc.Dir, histlog.Options{WindowsPerSegment: hc.WindowsPerSegment})
	if err != nil {
		return nil, err
	}
	if err := log.Reset(); err != nil {
		return nil, err
	}
	return &history{
		cfg:     hc,
		horizon: hc.horizonFrames(cfg.WindowLen),
		log:     log,
		tier:    trackdb.NewTieredView(nil, log),
	}, nil
}

// restoreHistory rebuilds a session's history machinery from a
// checkpoint reference: cut the on-disk log back to exactly the
// position the checkpoint covers, replay the view from segments, and
// re-tier it at the restored horizon.
func restoreHistory(cfg Config, st *checkpoint.SessionState) (*history, error) {
	ref := st.History
	hc := *cfg.History
	horizon := hc.horizonFrames(cfg.WindowLen)
	if ref.HotHorizon != horizon {
		return nil, fmt.Errorf("ingest: restore: checkpoint history horizon %d, config resolves to %d", ref.HotHorizon, horizon)
	}
	if ref.Windows < 0 || ref.Seq < 0 {
		return nil, fmt.Errorf("ingest: restore: negative history reference (windows %d, seq %d)", ref.Windows, ref.Seq)
	}
	if ref.Windows != st.NextWindow {
		return nil, fmt.Errorf("ingest: restore: history covers %d windows, session committed %d", ref.Windows, st.NextWindow)
	}
	if want := st.Merger.EventBase + len(st.Merger.Events); ref.Seq != want {
		return nil, fmt.Errorf("ingest: restore: history seq %d, merger log ends at %d", ref.Seq, want)
	}
	log, err := histlog.Open(hc.Dir, histlog.Options{WindowsPerSegment: hc.WindowsPerSegment})
	if err != nil {
		return nil, err
	}
	if err := log.TruncateTo(ref.Windows, ref.Seq); err != nil {
		return nil, fmt.Errorf("ingest: restore: %w", err)
	}
	view, err := log.ReplayView(-1)
	if err != nil {
		return nil, fmt.Errorf("ingest: restore: %w", err)
	}
	if view.Seq() != ref.Seq {
		return nil, fmt.Errorf("ingest: restore: segment replay ended at seq %d, checkpoint references %d", view.Seq(), ref.Seq)
	}
	return &history{
		cfg:     hc,
		horizon: horizon,
		log:     log,
		tier:    trackdb.NewTieredView(view, log),
	}, nil
}

// beginWindow resets the per-window journal buffer.
func (h *history) beginWindow() { h.scratch = h.scratch[:0] }

// extend journals one view extension and feeds it to the tiered view.
// The journal append is unconditional — the log is the durable source
// of truth — while a tier failure (cold-store I/O during rehydration)
// degrades the in-memory view and is recorded.
func (h *history) extend(id video.TrackID, b video.BBox) {
	c := b.Rect.Center()
	h.scratch = append(h.scratch, histlog.Extend{Track: id, Frame: b.Frame, CX: c.X, CY: c.Y, Class: b.Class})
	if err := h.tier.ExtendCell(id, b.Frame, b.Class, c.X, c.Y); err != nil {
		h.fail(err)
	}
}

// commitWindow finishes one window's history work: journal the window
// entry (extensions collected by extend plus the window's merge
// events), evict hot tracks that aged out of the horizon, trim the
// in-memory merger log to the sealed prefix, and fold segments when
// the compaction policy fires. Called after the window's events were
// applied to the tiered view and its deltas drained.
func (h *history) commitWindow(m *core.Merger, w video.Window, events []core.MergeEvent) {
	entry := histlog.WindowEntry{Window: w, Events: events}
	if len(h.scratch) > 0 {
		entry.Extends = append([]histlog.Extend(nil), h.scratch...)
	}
	if err := h.log.AppendWindow(entry); err != nil {
		h.fail(err)
		return
	}
	h.tier.EvictBefore(w.End + 1 - video.FrameIndex(h.horizon))
	m.TrimEvents(h.log.SealedSeq())
	if h.cfg.CompactEvery > 0 && h.log.SealedRawSegments() >= h.cfg.CompactEvery {
		if err := h.log.Compact(); err != nil {
			h.fail(err)
		} else {
			h.compactions++
		}
	}
}

// HistoryErr returns the first history-log failure (journal append,
// seal, compaction, or cold-store paging), or nil. Like CheckpointErr,
// a history failure does not stop the stream, but Checkpoint refuses
// to run until the session is rebuilt — the on-disk log and the
// in-memory state can no longer be guaranteed to agree.
func (in *Ingestor) HistoryErr() error {
	if in.hist == nil {
		return nil
	}
	return in.hist.err
}

// HistoryStats reports the tiered view's bounded-memory accounting:
// hot/cold track counts, resident cell count, and tiering traffic.
// Zero values when the session has no history.
func (in *Ingestor) HistoryStats() (hotTracks, coldTracks, hotCells int, tier trackdb.TierStats) {
	if in.hist == nil {
		return 0, 0, 0, trackdb.TierStats{}
	}
	tv := in.hist.tier
	return tv.HotTracks(), tv.ColdTracks(), tv.HotCells(), tv.Stats()
}

// AsOf reconstructs the merged-track view at the time-travel cut "all
// windows committed by frame": the nearest materialised snapshot plus
// segment replay, exactly equal to the live view (and therefore to the
// batch answer over MergedTracks) at the moment that window closed. It
// returns the reconstructed view and the cut's actual frame — the last
// covered window's End, -1 when no window had closed by frame. Frames
// before the retention boundary of a compacted log are refused, as is
// any call on a session without history or with a failed history log.
func (in *Ingestor) AsOf(frame video.FrameIndex) (*trackdb.LiveView, video.FrameIndex, error) {
	if in.hist == nil {
		return nil, 0, fmt.Errorf("ingest: session has no history log")
	}
	if in.hist.err != nil {
		return nil, 0, fmt.Errorf("ingest: history log failed earlier: %w", in.hist.err)
	}
	return in.hist.log.AsOf(frame)
}
