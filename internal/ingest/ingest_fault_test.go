package ingest

import (
	"testing"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/dataset"
	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/fault"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/track"
)

// TestIngestorSurvivesMidStreamOutage crashes the ReID device while the
// stream is flowing and restores it 200 frames later. The stream must
// keep flowing: the window that closes during the outage is selected in
// degraded mode, no window is dropped, and the windows processed after
// the restore match a fault-free run exactly (TMerge derives its sampling
// streams per window from a fixed seed, so selections are history-free).
//
// Timeline with L=1000 over 2400 frames: windows close at frames 999,
// 1499, 1999, and Close flushes two clipped tails. The device is down for
// frames [1400, 1600), so only window 1 (closing at 1499) sees the
// outage.
func TestIngestorSurvivesMidStreamOutage(t *testing.T) {
	v := streamScene(t)

	newCfg := func() Config {
		tc := core.DefaultTMergeConfig(5)
		tc.TauMax = 4000
		return Config{WindowLen: 1000, K: 0.05, Algorithm: core.NewTMerge(tc)}
	}

	// Fault-free reference.
	ref, err := New(track.Tracktor(),
		reid.NewOracle(reid.NewModel(7, dataset.AppearanceDim), device.NewCPU(device.DefaultCPU)),
		newCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, dets := range v.Detections {
		ref.Push(dets)
	}
	ref.Close()

	// Faulty run: same model over a crashable device behind the resilient
	// wrapper. Zero cooldown: the breaker probes again on the very next
	// submission, so recovery is immediate once the device is back.
	flaky := fault.NewFlaky(device.NewCPU(device.DefaultCPU), fault.Config{})
	rd := device.NewResilientDevice(flaky,
		device.RetryPolicy{MaxAttempts: 3, Jitter: -1},
		device.BreakerConfig{Threshold: 3, Cooldown: -1, CooldownRejections: -1},
		13)
	oracle := reid.NewOracle(reid.NewModel(7, dataset.AppearanceDim), rd)
	in, err := New(track.Tracktor(), oracle, newCfg())
	if err != nil {
		t.Fatal(err)
	}
	for f, dets := range v.Detections {
		if f == 1400 {
			flaky.Crash()
		}
		if f == 1600 {
			flaky.Restore()
		}
		in.Push(dets)
	}
	in.Close()

	got, want := in.Results(), ref.Results()
	if len(got) != len(want) {
		t.Fatalf("faulty stream produced %d windows, reference %d", len(got), len(want))
	}
	for i, res := range got {
		wantDegraded := i == 1
		if res.Degraded != wantDegraded {
			t.Errorf("window %d: Degraded = %v, want %v", i, res.Degraded, wantDegraded)
		}
		if res.Pairs != want[i].Pairs {
			t.Errorf("window %d: %d pairs, reference %d — pair universes must not depend on the device",
				i, res.Pairs, want[i].Pairs)
		}
		if wantDegraded {
			// The degraded window still ranks its candidates.
			if res.Pairs > 0 && len(res.Selected) == 0 {
				t.Errorf("window %d degraded with %d pairs but selected nothing", i, res.Pairs)
			}
			continue
		}
		if len(res.Selected) != len(want[i].Selected) {
			t.Errorf("window %d: %d selected, reference %d", i, len(res.Selected), len(want[i].Selected))
			continue
		}
		for j := range res.Selected {
			if res.Selected[j] != want[i].Selected[j] {
				t.Errorf("window %d pos %d: selection diverged: %v vs %v",
					i, j, res.Selected[j], want[i].Selected[j])
			}
		}
	}
	// The outage window must actually have had work to degrade.
	if got[1].Pairs == 0 {
		t.Fatal("outage window has no pairs; the drill exercised nothing")
	}

	// Breaker and fault counters show the outage really happened and was
	// recovered from.
	rc := rd.Counters()
	if rc.Trips == 0 || rc.Failures == 0 {
		t.Errorf("no breaker activity recorded: %+v", rc)
	}
	if fc := flaky.Counters(); fc.Outages == 0 {
		t.Errorf("no outage attempts recorded: %+v", fc)
	}
	if st := rd.State(); st != device.BreakerClosed {
		t.Errorf("breaker finished %v, want closed", st)
	}

	// The merged track set is still valid and queryable after the fault.
	ts := in.MergedTracks()
	if ts.Len() == 0 {
		t.Fatal("no tracks after faulted stream")
	}
	for _, tr := range ts.Tracks() {
		if err := tr.Validate(); err != nil {
			t.Fatalf("post-outage track invalid: %v", err)
		}
	}
}

// TestIngestorPermanentOutageDegradesEverything: a device that never
// recovers must not wedge the stream — every window with pairs degrades
// to the spatial prior and the session still closes cleanly.
func TestIngestorPermanentOutageDegradesEverything(t *testing.T) {
	v := streamScene(t)
	flaky := fault.NewFlaky(device.NewCPU(device.DefaultCPU), fault.Config{})
	flaky.Crash()
	rd := device.NewResilientDevice(flaky,
		device.RetryPolicy{MaxAttempts: 2, Jitter: -1},
		device.BreakerConfig{Threshold: 2, Cooldown: -1, CooldownRejections: -1},
		13)
	oracle := reid.NewOracle(reid.NewModel(7, dataset.AppearanceDim), rd)
	tc := core.DefaultTMergeConfig(5)
	tc.TauMax = 4000
	in, err := New(track.Tracktor(), oracle, Config{
		WindowLen: 1000, K: 0.05, Algorithm: core.NewTMerge(tc),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, dets := range v.Detections {
		in.Push(dets)
	}
	in.Close()

	for _, res := range in.Results() {
		if res.Pairs > 0 && !res.Degraded {
			t.Errorf("window %d with %d pairs not degraded under permanent outage", res.Window.Index, res.Pairs)
		}
		if res.Pairs > 0 && len(res.Selected) == 0 {
			t.Errorf("window %d selected nothing", res.Window.Index)
		}
	}
	if o := oracle.Stats(); o.Extractions != 0 || o.Distances != 0 {
		t.Errorf("oracle recorded work under permanent outage: %+v", o)
	}
}
