package ingest

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/dataset"
	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/geom"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/track"
	"github.com/tmerge/tmerge/internal/video"
)

// pipeline bundles the components a session needs, so an interrupted
// run's restore side can assemble a fresh-but-equivalent stack exactly
// the way the original side did.
type pipeline struct {
	engine *track.Engine
	oracle *reid.Oracle
	cfg    Config
}

func newPipeline(algoSeed uint64, batch int) pipeline {
	model := reid.NewModel(7, dataset.AppearanceDim)
	oracle := reid.NewOracle(model, device.NewCPU(device.DefaultCPU))
	acfg := core.DefaultTMergeConfig(algoSeed)
	acfg.TauMax = 4000
	acfg.Batch = batch
	return pipeline{
		engine: track.Tracktor(),
		oracle: oracle,
		cfg:    Config{WindowLen: 1000, K: 0.05, Algorithm: core.NewTMerge(acfg)},
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// sessionFingerprint reduces everything externally observable about a
// session to comparable bytes: every window result, the merged track
// set (IDs, frames, geometry, observations — bit-precise via JSON's
// exact float64 round-trip), and the oracle work counters.
func sessionFingerprint(t *testing.T, in *Ingestor) []byte {
	t.Helper()
	return mustJSON(t, struct {
		Results []WindowResult
		Merged  []*video.Track
		Stats   reid.Stats
	}{in.Results(), in.MergedTracks().Sorted(), in.oracle.Stats()})
}

func TestCheckpointReplayEquivalence(t *testing.T) {
	v := streamScene(t)
	cases := []struct {
		name  string
		seed  uint64
		batch int
		cut   int
	}{
		{"tmerge-seed5-cut777", 5, 1, 777},
		{"tmerge-seed11-cut1650", 11, 1, 1650},
		{"tmergeB-seed5-cut1234", 5, 10, 1234},
		{"tmergeB-seed11-cut2001", 11, 10, 2001},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Reference: the uninterrupted session.
			rp := newPipeline(tc.seed, tc.batch)
			ref, err := New(rp.engine, rp.oracle, rp.cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, dets := range v.Detections {
				ref.Push(dets)
			}
			ref.Close()

			// Interrupted session: run to the cut, checkpoint, "crash"
			// (drop the ingestor), restore into a freshly assembled
			// pipeline, replay the remainder.
			p1 := newPipeline(tc.seed, tc.batch)
			first, err := New(p1.engine, p1.oracle, p1.cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, dets := range v.Detections[:tc.cut] {
				first.Push(dets)
			}
			data, err := first.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}

			p2 := newPipeline(tc.seed, tc.batch)
			resumed, err := Restore(p2.engine, p2.oracle, p2.cfg, data)
			if err != nil {
				t.Fatal(err)
			}
			if resumed.FramesSeen() != tc.cut {
				t.Fatalf("restored cursor at %d, checkpointed at %d", resumed.FramesSeen(), tc.cut)
			}
			for _, dets := range v.Detections[tc.cut:] {
				resumed.Push(dets)
			}
			resumed.Close()

			if !bytes.Equal(sessionFingerprint(t, ref), sessionFingerprint(t, resumed)) {
				t.Error("restored session diverged from the uninterrupted one")
			}
			if a, b := rp.oracle.Device().Clock().Elapsed(), p2.oracle.Device().Clock().Elapsed(); a != b {
				t.Errorf("virtual clocks diverged: %v vs %v", a, b)
			}
		})
	}
}

func TestAutoCheckpointCrashRestore(t *testing.T) {
	v := streamScene(t)

	rp := newPipeline(3, 1)
	ref, err := New(rp.engine, rp.oracle, rp.cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, dets := range v.Detections {
		ref.Push(dets)
	}
	ref.Close()

	// Auto-checkpointing session killed mid-stream: only the sink's last
	// delivery survives the crash.
	var last []byte
	p1 := newPipeline(3, 1)
	cfg := p1.cfg
	cfg.AutoCheckpointEvery = 1
	cfg.CheckpointSink = func(b []byte) error {
		last = append([]byte(nil), b...)
		return nil
	}
	in, err := New(p1.engine, p1.oracle, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const killAt = 1700
	for f, dets := range v.Detections {
		if f == killAt {
			break
		}
		in.Push(dets)
	}
	if err := in.CheckpointErr(); err != nil {
		t.Fatal(err)
	}
	if last == nil {
		t.Fatal("no auto-checkpoint was emitted before the crash")
	}

	p2 := newPipeline(3, 1)
	resumed, err := Restore(p2.engine, p2.oracle, p2.cfg, last)
	if err != nil {
		t.Fatal(err)
	}
	from := resumed.FramesSeen()
	if from == 0 || from > killAt {
		t.Fatalf("restored cursor %d outside (0, %d]", from, killAt)
	}
	for _, dets := range v.Detections[from:] {
		resumed.Push(dets)
	}
	resumed.Close()

	if !bytes.Equal(sessionFingerprint(t, ref), sessionFingerprint(t, resumed)) {
		t.Error("crash-restored session diverged from the uninterrupted one")
	}
}

func TestRestoreRejectsMismatchedPipeline(t *testing.T) {
	v := streamScene(t)
	p := newPipeline(5, 1)
	in, err := New(p.engine, p.oracle, p.cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, dets := range v.Detections[:600] {
		in.Push(dets)
	}
	data, err := in.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	fresh := func() pipeline { return newPipeline(5, 1) }

	t.Run("wrong-K", func(t *testing.T) {
		q := fresh()
		q.cfg.K = 0.1
		if _, err := Restore(q.engine, q.oracle, q.cfg, data); err == nil {
			t.Error("mismatched K accepted")
		}
	})
	t.Run("wrong-window-len", func(t *testing.T) {
		q := fresh()
		q.cfg.WindowLen = 800
		if _, err := Restore(q.engine, q.oracle, q.cfg, data); err == nil {
			t.Error("mismatched window length accepted")
		}
	})
	t.Run("wrong-algorithm", func(t *testing.T) {
		q := fresh()
		q.cfg.Algorithm = core.NewBaseline()
		if _, err := Restore(q.engine, q.oracle, q.cfg, data); err == nil {
			t.Error("mismatched algorithm accepted")
		}
	})
	t.Run("wrong-model", func(t *testing.T) {
		q := fresh()
		q.oracle = reid.NewOracle(reid.NewModel(7, dataset.AppearanceDim+2), device.NewCPU(device.DefaultCPU))
		if _, err := Restore(q.engine, q.oracle, q.cfg, data); err == nil {
			t.Error("mismatched model accepted")
		}
	})
	t.Run("wrong-engine", func(t *testing.T) {
		q := fresh()
		q.engine = track.SORT()
		if _, err := Restore(q.engine, q.oracle, q.cfg, data); err == nil {
			t.Error("mismatched tracker engine accepted")
		}
	})
	t.Run("corrupt-bytes", func(t *testing.T) {
		q := fresh()
		mut := append([]byte(nil), data...)
		mut[len(mut)/2] ^= 0x01
		if _, err := Restore(q.engine, q.oracle, q.cfg, mut); err == nil {
			t.Error("corrupted checkpoint accepted")
		}
	})
	t.Run("truncated-bytes", func(t *testing.T) {
		q := fresh()
		if _, err := Restore(q.engine, q.oracle, q.cfg, data[:len(data)/3]); err == nil {
			t.Error("truncated checkpoint accepted")
		}
	})

	// The original bytes still restore after all those rejections: none
	// of them may have consumed or corrupted anything.
	q := fresh()
	if _, err := Restore(q.engine, q.oracle, q.cfg, data); err != nil {
		t.Fatalf("pristine checkpoint no longer restores: %v", err)
	}
}

// hostileVariants returns detections for frame f that the sanitizer must
// quarantine, one per reason class.
func hostileVariants(f video.FrameIndex) []video.BBox {
	nan := math.NaN()
	obs := make([]float64, dataset.AppearanceDim)
	obs[3] = nan
	return []video.BBox{
		{ID: 900001, Frame: f, Rect: geom.Rect{X: nan, Y: 10, W: 20, H: 20}},
		{ID: 900002, Frame: f, Rect: geom.Rect{X: 5, Y: math.Inf(1), W: 20, H: 20}},
		{ID: 900003, Frame: f, Rect: geom.Rect{X: 5, Y: 10, W: 0, H: 20}},
		{ID: 900004, Frame: f, Rect: geom.Rect{X: 5, Y: 10, W: 20, H: -3}},
		{ID: 900005, Frame: f + 7, Rect: geom.Rect{X: 5, Y: 10, W: 20, H: 20}},
		{ID: 900006, Frame: f, Rect: geom.Rect{X: 5, Y: 10, W: 20, H: 20}, Obs: obs},
	}
}

func TestPushQuarantinesHostileInput(t *testing.T) {
	v := streamScene(t)
	const frames = 1200

	clean := newPipeline(5, 1)
	cleanIn, err := New(clean.engine, clean.oracle, clean.cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, dets := range v.Detections[:frames] {
		cleanIn.Push(dets)
	}
	cleanIn.Close()

	dirty := newPipeline(5, 1)
	dirtyIn, err := New(dirty.engine, dirty.oracle, dirty.cfg)
	if err != nil {
		t.Fatal(err)
	}
	for f, dets := range v.Detections[:frames] {
		fi := video.FrameIndex(f)
		// Interleave the real detections with hostile ones; the clean
		// subset must be what the tracker sees.
		mixed := append(append([]video.BBox(nil), hostileVariants(fi)...), dets...)
		dirtyIn.Push(mixed)
		if f%100 == 17 {
			// Transport misbehaviour: a replayed frame and a regressed one.
			dirtyIn.PushAt(fi, dets)
			dirtyIn.PushAt(fi-5, dets)
		}
	}
	dirtyIn.Close()

	rep := dirtyIn.Quarantine()
	for _, reason := range []string{
		ReasonNonFiniteGeometry, ReasonNonPositiveSize, ReasonFrameMismatch,
		ReasonNonFiniteObservation, ReasonFrameDuplicate, ReasonFrameRegressed,
	} {
		if rep.Counts[reason] == 0 {
			t.Errorf("no rejects counted under %q", reason)
		}
	}
	sum := 0
	for _, n := range rep.Counts {
		sum += n
	}
	if sum != rep.TotalRejected || rep.TotalRejected == 0 {
		t.Errorf("reason counts sum to %d, total is %d", sum, rep.TotalRejected)
	}
	if len(rep.Rejected) > DefaultQuarantineCap {
		t.Errorf("dead-letter buffer holds %d entries, cap is %d", len(rep.Rejected), DefaultQuarantineCap)
	}
	if rep.TotalRejected-rep.Dropped != len(rep.Rejected) {
		t.Errorf("retained %d but total-dropped is %d", len(rep.Rejected), rep.TotalRejected-rep.Dropped)
	}

	// The per-window quarantine deltas partition the total.
	winSum := 0
	for _, res := range dirtyIn.Results() {
		winSum += res.Quarantined
	}
	if winSum != rep.TotalRejected {
		t.Errorf("window quarantine deltas sum to %d, total is %d", winSum, rep.TotalRejected)
	}

	// Hostile input must not have changed a single result: compare
	// everything but the quarantine columns against the clean run.
	type shadow struct {
		Results []WindowResult
		Merged  []*video.Track
	}
	strip := func(in *Ingestor) shadow {
		rs := append([]WindowResult(nil), in.Results()...)
		for i := range rs {
			rs[i].Quarantined = 0
		}
		return shadow{rs, in.MergedTracks().Sorted()}
	}
	if !bytes.Equal(mustJSON(t, strip(cleanIn)), mustJSON(t, strip(dirtyIn))) {
		t.Error("hostile input changed the stream's results")
	}
}

func TestQuarantineCapAndCheckpointCarry(t *testing.T) {
	p := newPipeline(5, 1)
	cfg := p.cfg
	cfg.WindowLen = 10
	cfg.QuarantineCap = 4
	in, err := New(p.engine, p.oracle, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 12; f++ {
		in.Push(hostileVariants(video.FrameIndex(f))[:2])
	}
	rep := in.Quarantine()
	if len(rep.Rejected) != 4 {
		t.Fatalf("retained %d rejects, cap is 4", len(rep.Rejected))
	}
	if rep.TotalRejected != 24 || rep.Dropped != 20 {
		t.Fatalf("total/dropped = %d/%d, want 24/20", rep.TotalRejected, rep.Dropped)
	}

	// The ledger — counters, cap, and retained buffer — survives a
	// checkpoint round trip.
	data, err := in.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	q := newPipeline(5, 1)
	qcfg := q.cfg
	qcfg.WindowLen = 10
	restored, err := Restore(q.engine, q.oracle, qcfg, data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, rep), mustJSON(t, restored.Quarantine())) {
		t.Error("quarantine ledger did not survive the checkpoint round trip")
	}
}

func TestConfigValidatesDurabilityFields(t *testing.T) {
	algo := core.NewBaseline()
	bad := []Config{
		{WindowLen: 10, K: 0.05, Algorithm: algo, QuarantineCap: -1},
		{WindowLen: 10, K: 0.05, Algorithm: algo, AutoCheckpointEvery: -2},
		{WindowLen: 10, K: 0.05, Algorithm: algo, AutoCheckpointEvery: 3}, // no sink
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid durability config accepted", i)
		}
	}
	ok := Config{WindowLen: 10, K: 0.05, Algorithm: algo,
		AutoCheckpointEvery: 3, CheckpointSink: func([]byte) error { return nil }}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid durability config rejected: %v", err)
	}
}
