package ingest

import (
	"math"
	"sync"

	"github.com/tmerge/tmerge/internal/checkpoint"
	"github.com/tmerge/tmerge/internal/video"
)

// Quarantine reasons. Each rejected detection (or frame-level reject) is
// counted under exactly one of these, so operators can tell a flaky
// detector (non-finite geometry) from a broken transport (regressed or
// duplicate frames) without reading the dead-letter buffer.
const (
	// ReasonNonFiniteGeometry: a NaN or Inf in the box rectangle. Letting
	// one through would poison every Kalman filter and IoU it touches.
	ReasonNonFiniteGeometry = "non-finite-geometry"
	// ReasonNonPositiveSize: width or height <= 0.
	ReasonNonPositiveSize = "non-positive-size"
	// ReasonNonFiniteObservation: a NaN or Inf appearance component,
	// which would propagate through the ReID embedding into every
	// distance.
	ReasonNonFiniteObservation = "non-finite-observation"
	// ReasonFrameMismatch: the detection's own Frame field disagrees with
	// the frame it was pushed at.
	ReasonFrameMismatch = "frame-mismatch"
	// ReasonFrameRegressed: the whole frame arrived with an index before
	// the last accepted frame (or negative). The frame is dropped; the
	// stream cursor does not move.
	ReasonFrameRegressed = "frame-regressed"
	// ReasonFrameDuplicate: the whole frame re-used the last accepted
	// frame index. First write wins; the replay is dropped.
	ReasonFrameDuplicate = "frame-duplicate"
)

// DefaultQuarantineCap bounds the dead-letter buffer when the
// configuration does not choose a cap. Counters keep counting past the
// cap; only the retained detections are bounded.
const DefaultQuarantineCap = 256

// RejectedDetection is one quarantined input: the detection as received,
// the frame index it was pushed at, and the reason it was refused.
type RejectedDetection struct {
	Frame  video.FrameIndex
	Det    video.BBox
	Reason string
}

// QuarantineReport is a detached snapshot of the quarantine ledger.
type QuarantineReport struct {
	// TotalRejected counts every reject since the session began
	// (including restored history), regardless of the buffer cap.
	TotalRejected int
	// Dropped counts rejects that were counted but not retained because
	// the dead-letter buffer was full.
	Dropped int
	// Counts breaks TotalRejected down by reason.
	Counts map[string]int
	// Rejected is the retained dead-letter buffer, oldest first, at most
	// cap entries.
	Rejected []RejectedDetection
}

// quarantine is the ingestor's dead-letter ledger: a capped buffer of
// rejected detections plus unbounded per-reason counters. It carries its
// own mutex so Quarantine() snapshots are safe to take from a monitoring
// goroutine while a PushAt is in flight (the serving layer's health
// polls do exactly that); all other Ingestor state remains single-flight.
type quarantine struct {
	mu       sync.Mutex
	cap      int
	total    int
	dropped  int
	counts   map[string]int
	rejected []RejectedDetection
}

func newQuarantine(cap int) *quarantine {
	if cap <= 0 {
		cap = DefaultQuarantineCap
	}
	return &quarantine{cap: cap, counts: make(map[string]int)}
}

// add records one reject. The counter always increments; the detection
// itself is retained only while the buffer has room. Non-finite float
// components are zeroed in the retained copy — the reason string already
// records what was wrong, and the ledger must stay JSON-serialisable
// (checkpoints embed it; JSON cannot carry NaN or Inf).
func (q *quarantine) add(f video.FrameIndex, det video.BBox, reason string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.total++
	q.counts[reason]++
	if len(q.rejected) >= q.cap {
		q.dropped++
		return
	}
	q.rejected = append(q.rejected, RejectedDetection{Frame: f, Det: scrubNonFinite(det), Reason: reason})
}

// totalCount returns the all-time reject counter under the ledger lock.
func (q *quarantine) totalCount() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.total
}

// scrubNonFinite returns det with every NaN/Inf float component replaced
// by zero, copying Obs only when it needs scrubbing.
func scrubNonFinite(det video.BBox) video.BBox {
	finite := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return v
	}
	det.Rect.X = finite(det.Rect.X)
	det.Rect.Y = finite(det.Rect.Y)
	det.Rect.W = finite(det.Rect.W)
	det.Rect.H = finite(det.Rect.H)
	for i, v := range det.Obs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			scrubbed := append([]float64(nil), det.Obs...)
			for j := i; j < len(scrubbed); j++ {
				scrubbed[j] = finite(scrubbed[j])
			}
			det.Obs = scrubbed
			break
		}
	}
	return det
}

// addFrame records a frame-level reject covering every detection in the
// frame. An empty frame still counts once, so a stream of bogus empty
// frames remains observable.
func (q *quarantine) addFrame(f video.FrameIndex, dets []video.BBox, reason string) {
	if len(dets) == 0 {
		q.add(f, video.BBox{Frame: f}, reason)
		return
	}
	for _, d := range dets {
		q.add(f, d, reason)
	}
}

func (q *quarantine) report() QuarantineReport {
	q.mu.Lock()
	defer q.mu.Unlock()
	r := QuarantineReport{
		TotalRejected: q.total,
		Dropped:       q.dropped,
		Counts:        make(map[string]int, len(q.counts)),
		Rejected:      append([]RejectedDetection(nil), q.rejected...),
	}
	for k, v := range q.counts {
		r.Counts[k] = v
	}
	return r
}

func (q *quarantine) state() checkpoint.QuarantineState {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := checkpoint.QuarantineState{
		Cap:           q.cap,
		TotalRejected: q.total,
		Dropped:       q.dropped,
	}
	if len(q.counts) > 0 {
		st.Counts = make(map[string]int, len(q.counts))
		for k, v := range q.counts {
			st.Counts[k] = v
		}
	}
	for _, r := range q.rejected {
		st.Rejected = append(st.Rejected, checkpoint.RejectedRecord{Frame: r.Frame, Det: r.Det, Reason: r.Reason})
	}
	return st
}

func quarantineFromState(st checkpoint.QuarantineState) *quarantine {
	q := newQuarantine(st.Cap)
	q.total = st.TotalRejected
	q.dropped = st.Dropped
	for k, v := range st.Counts {
		q.counts[k] = v
	}
	for _, r := range st.Rejected {
		q.rejected = append(q.rejected, RejectedDetection{Frame: r.Frame, Det: r.Det, Reason: r.Reason})
	}
	return q
}

// classifyDetection vets one detection pushed at frame f. It returns the
// quarantine reason and false for a hostile detection, or ok for a clean
// one. The checks mirror video.BBox.Validate but attribute each failure
// to a reason, and additionally pin the detection to the push frame.
func classifyDetection(f video.FrameIndex, b video.BBox) (reason string, ok bool) {
	for _, v := range [...]float64{b.Rect.X, b.Rect.Y, b.Rect.W, b.Rect.H} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return ReasonNonFiniteGeometry, false
		}
	}
	if b.Rect.W <= 0 || b.Rect.H <= 0 {
		return ReasonNonPositiveSize, false
	}
	if b.Frame != f {
		return ReasonFrameMismatch, false
	}
	for _, v := range b.Obs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return ReasonNonFiniteObservation, false
		}
	}
	return "", true
}
