package tmerge_test

// Integration tests of the public API surface: a downstream user's view
// of the library, exercising generation -> tracking -> selection ->
// merging -> evaluation end to end.

import (
	"testing"

	"github.com/tmerge/tmerge"
)

func generate(t *testing.T) *tmerge.Video {
	t.Helper()
	profile := tmerge.KITTILike(42)
	profile.NumVideos = 1
	ds, err := profile.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return ds.Videos[0]
}

func TestPublicEndToEnd(t *testing.T) {
	v := generate(t)
	tracks := tmerge.Tracktor().Track(v.Detections)
	if tracks.Len() < v.GT.Len() {
		t.Fatalf("tracker produced %d tracks for %d objects", tracks.Len(), v.GT.Len())
	}

	oracle := tmerge.NewOracle(
		tmerge.NewModel(7, tmerge.AppearanceDim),
		tmerge.NewCPU(tmerge.DefaultCPUCost))
	res := tmerge.RunPipeline(tracks, v.NumFrames, oracle, tmerge.PipelineConfig{
		K:         0.05,
		Algorithm: tmerge.NewTMerge(tmerge.DefaultTMergeConfig(1)),
		Verify:    true,
	})
	if res.REC < 0.5 {
		t.Errorf("end-to-end REC = %v", res.REC)
	}
	before := tmerge.Identity(v.GT, tracks)
	after := tmerge.Identity(v.GT, res.Merged)
	if after.IDF1 < before.IDF1 {
		t.Errorf("IDF1 fell: %v -> %v", before.IDF1, after.IDF1)
	}
}

func TestPublicAlgorithmsAgreeOnEasyCases(t *testing.T) {
	v := generate(t)
	tracks := tmerge.Tracktor().Track(v.Detections)
	w := tmerge.Window{Start: 0, End: tmerge.FrameIndex(v.NumFrames - 1)}
	ps := tmerge.BuildPairSet(w, tracks.Sorted(), nil)
	truth := tmerge.PolyonymousPairs(ps)
	if len(truth) == 0 {
		t.Skip("no polyonymous pairs in this scene")
	}
	model := tmerge.NewModel(7, tmerge.AppearanceDim)
	blSel := tmerge.NewBaseline().Select(ps, tmerge.NewOracle(model, tmerge.NewCPU(tmerge.DefaultCPUCost)), 0.05)
	tmSel := tmerge.NewTMerge(tmerge.DefaultTMergeConfig(1)).Select(ps, tmerge.NewOracle(model, tmerge.NewCPU(tmerge.DefaultCPUCost)), 0.05)
	blRec := tmerge.Recall(blSel, truth)
	tmRec := tmerge.Recall(tmSel, truth)
	if blRec < 0.9 {
		t.Errorf("baseline recall = %v", blRec)
	}
	if tmRec < blRec-0.35 {
		t.Errorf("TMerge recall %v far below baseline %v", tmRec, blRec)
	}
}

func TestPublicQueriesAndMetrics(t *testing.T) {
	v := generate(t)
	tracks := tmerge.Tracktor().Track(v.Detections)

	count := tmerge.CountQuery{MinFrames: 100}
	if r := count.Recall(v.GT, tracks); r < 0 || r > 1 {
		t.Errorf("count recall = %v", r)
	}
	co := tmerge.CoOccurQuery{GroupSize: 2, MinFrames: 50}
	if r := co.Recall(v.GT, tracks); r < 0 || r > 1 {
		t.Errorf("cooccur recall = %v", r)
	}
	clear := tmerge.CLEARMOT(v.GT, tracks)
	if clear.GTBoxes == 0 {
		t.Error("CLEAR saw no GT boxes")
	}
	if rate := tmerge.PolyonymousRate(tmerge.BuildPairSet(
		tmerge.Window{Start: 0, End: tmerge.FrameIndex(v.NumFrames - 1)},
		tracks.Sorted(), nil)); rate < 0 || rate > 1 {
		t.Errorf("polyonymous rate = %v", rate)
	}
}

func TestPublicMergerAndPartition(t *testing.T) {
	m := tmerge.NewMerger()
	m.Merge(tmerge.MakePairKey(3, 8))
	if m.Canonical(8) != 3 {
		t.Error("canonical ID wrong")
	}
	ws := tmerge.Partition(4000, 2000)
	if len(ws) != 4 {
		t.Errorf("partition = %d windows", len(ws))
	}
}

func TestPublicDatasetRoundTrip(t *testing.T) {
	profile := tmerge.KITTILike(1)
	profile.NumVideos = 1
	profile.Template.NumFrames = 100
	profile.MinPolyPairs = 0 // a 100-frame scene cannot pass curation
	ds, err := profile.Generate()
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/ds.json.gz"
	if err := tmerge.SaveDataset(ds, path); err != nil {
		t.Fatal(err)
	}
	got, err := tmerge.LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Videos[0].GT.Len() != ds.Videos[0].GT.Len() {
		t.Error("round trip lost GT tracks")
	}
}

func TestPublicCustomTracker(t *testing.T) {
	engine := tmerge.NewTrackerEngine(tmerge.TrackerConfig{
		Name:    "custom",
		MaxAge:  5,
		MinIoU:  0.1,
		MinHits: 1,
	})
	if engine.Name() != "custom" {
		t.Error("custom tracker name")
	}
	v := generate(t)
	ts := engine.Track(v.Detections)
	if ts.Len() == 0 {
		t.Error("custom tracker produced no tracks")
	}
}

func TestPublicClassesAndFilters(t *testing.T) {
	scene := tmerge.MOT17Like(5).Template
	scene.Name = "classes"
	scene.NumClasses = 2
	v, err := tmerge.GenerateScene(scene)
	if err != nil {
		t.Fatal(err)
	}
	tracks := tmerge.Tracktor().Track(v.Detections)
	for _, tr := range tracks.Tracks() {
		c := tr.Boxes[0].Class
		for _, b := range tr.Boxes {
			if b.Class != c {
				t.Fatalf("track %d mixes classes", tr.ID)
			}
		}
	}
	// Temporal-overlap pre-filter: with slack at least the maximum true
	// pair overlap (fragments can briefly coexist when the tracker spawns
	// a duplicate while coasting), the universe shrinks without losing
	// any true pair.
	w := tmerge.Window{Start: 0, End: tmerge.FrameIndex(v.NumFrames - 1)}
	full := tmerge.BuildPairSet(w, tracks.Sorted(), nil)
	truth := tmerge.PolyonymousPairs(full)
	slack := 10
	for key := range truth {
		p := full.Get(key)
		lo, hi := p.TI.StartFrame(), p.TI.EndFrame()
		if s := p.TJ.StartFrame(); s > lo {
			lo = s
		}
		if e := p.TJ.EndFrame(); e < hi {
			hi = e
		}
		if ov := int(hi-lo) + 1; ov > slack {
			slack = ov
		}
	}
	filtered := tmerge.BuildPairSetFiltered(w, tracks.Sorted(), nil, tmerge.TemporalOverlapFilter(slack))
	if filtered.Len() >= full.Len() {
		t.Errorf("filter kept %d of %d pairs", filtered.Len(), full.Len())
	}
	for key := range truth {
		if filtered.Get(key) == nil {
			t.Errorf("filter dropped true pair %v", key)
		}
	}
}

func TestPublicTrackStore(t *testing.T) {
	v := generate(t)
	tracks := tmerge.Tracktor().Track(v.Detections)
	store := tmerge.TrackStoreFrom(tracks)
	if store.Len() != tracks.Len() {
		t.Fatalf("store holds %d of %d tracks", store.Len(), tracks.Len())
	}
	mid := tmerge.FrameIndex(v.NumFrames / 2)
	inRange := store.TracksInRange(mid, mid+10)
	for _, tr := range inRange {
		if tr.EndFrame() < mid || tr.StartFrame() > mid+10 {
			t.Errorf("track %d outside queried range", tr.ID)
		}
	}
}

func TestPublicIngestor(t *testing.T) {
	v := generate(t)
	oracle := tmerge.NewOracle(
		tmerge.NewModel(7, tmerge.AppearanceDim),
		tmerge.NewCPU(tmerge.DefaultCPUCost))
	cfg := tmerge.DefaultTMergeConfig(3)
	cfg.TauMax = 2000
	in, err := tmerge.NewIngestor(tmerge.Tracktor(), oracle, tmerge.IngestConfig{
		WindowLen: 300,
		K:         0.05,
		Algorithm: tmerge.NewTMerge(cfg),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, dets := range v.Detections {
		in.Push(dets)
	}
	in.Close()
	if in.FramesSeen() != v.NumFrames {
		t.Errorf("FramesSeen = %d", in.FramesSeen())
	}
	if in.MergedTracks().Len() == 0 {
		t.Error("no merged tracks")
	}
}

func TestPublicCalibrateAndGridSearch(t *testing.T) {
	v := generate(t)
	tracks := tmerge.Tracktor().Track(v.Detections)
	oracle := tmerge.NewOracle(
		tmerge.NewModel(7, tmerge.AppearanceDim),
		tmerge.NewCPU(tmerge.DefaultCPUCost))
	w := tmerge.Window{Start: 0, End: tmerge.FrameIndex(v.NumFrames - 1)}
	ps := tmerge.BuildPairSet(w, tracks.Sorted(), nil)
	truth := tmerge.PolyonymousPairs(ps)
	if len(truth) == 0 {
		t.Skip("no truth in this scene")
	}
	cal, err := tmerge.CalibrateK(
		[]tmerge.LabelledWindow{{Pairs: ps, Truth: truth}}, oracle, 0.8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cal.K <= 0 || cal.K > 0.2 {
		t.Errorf("calibrated K = %v", cal.K)
	}
	if tau := tmerge.SuggestTauMax(ps); tau < 2000 {
		t.Errorf("suggested tau = %d", tau)
	}
}
