// Command benchrunner regenerates the paper's tables and figures on the
// synthetic datasets.
//
// Usage:
//
//	benchrunner -exp all
//	benchrunner -exp fig5,table2 -videos 3 -seed 42
//
// Each experiment prints a plain-text table; EXPERIMENTS.md records the
// expected shapes next to the paper's reported values.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/tmerge/tmerge/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "comma-separated experiments to run (fig3..fig13,table2,pearson,ablations) or 'all'")
		seed    = flag.Uint64("seed", 42, "master seed for datasets and algorithms")
		videos  = flag.Int("videos", 3, "videos per dataset (0 = full profile size)")
		trials  = flag.Int("trials", 3, "independent trials to average stochastic algorithms over")
		workers = flag.Int("workers", 3, "parallel workers across trials")
	)
	flag.Parse()

	s := bench.NewSuite(*seed)
	s.VideosPerDataset = *videos
	s.Trials = *trials
	s.Workers = *workers
	w := os.Stdout

	runners := map[string]func(){
		"fig3":      func() { s.Fig3(w) },
		"fig4":      func() { s.Fig4(w) },
		"fig5":      func() { s.Fig5(w) },
		"fig6":      func() { s.Fig6(w) },
		"fig7":      func() { s.Fig7(w) },
		"fig8":      func() { s.Fig8(w) },
		"fig9":      func() { s.Fig9(w) },
		"fig10":     func() { s.Fig10(w) },
		"fig11":     func() { s.Fig11(w) },
		"fig12":     func() { s.Fig12(w) },
		"fig13":     func() { s.Fig13(w) },
		"table2":    func() { s.Table2(w) },
		"ablations": func() { s.Ablations(w) },
		"pearson":   func() { s.Pearson(w) },
	}

	var names []string
	if *exp == "all" {
		for name := range runners {
			names = append(names, name)
		}
		sort.Strings(names)
	} else {
		for _, name := range strings.Split(*exp, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, ok := runners[name]; !ok {
				fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q\n", name)
				os.Exit(2)
			}
			names = append(names, name)
		}
	}

	for _, name := range names {
		start := time.Now()
		runners[name]()
		fmt.Fprintf(w, "[%s completed in %s]\n", name, time.Since(start).Round(time.Millisecond))
	}
}
