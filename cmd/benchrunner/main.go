// Command benchrunner regenerates the paper's tables and figures on the
// synthetic datasets, and runs the parallel window-executor benchmark
// that gates CI.
//
// Usage:
//
//	benchrunner -exp all
//	benchrunner -exp fig5,table2 -videos 3 -seed 42
//	benchrunner -exp all -json results.ndjson
//	benchrunner -exp servebench -streams 4,16
//	benchrunner -exp histbench -json hist.ndjson
//	benchrunner -bench -bench-out BENCH_pr.json -compare BENCH_baseline.json -min-speedup 2
//
// Each experiment prints a plain-text table; EXPERIMENTS.md records the
// expected shapes next to the paper's reported values. With -json, every
// executed experiment additionally appends its structured result to the
// given file as line-delimited JSON (one bench.Record per line, the same
// NDJSON convention as tmergevet -json).
//
// histbench streams a million-track synthetic workload through the
// log-structured history spine (tiered view over a segmented on-disk
// log) and enforces its bounded-memory gates: a deterministic hot-cell
// ceiling and a measured heap-growth-per-track ceiling, each reported
// as an explicit gate_status row (skipped, loudly, where unmeasurable).
// -streams overrides the servebench fleet sizes; an override that drops
// the pinned large arm emits an explicit skipped gate_status row so the
// artifact records the reduced coverage.
//
// -bench runs the pinned parallel-executor benchmark instead of the
// experiments: the same pass at Workers ∈ {1, 2, 4}, written as NDJSON
// rows (-bench-out). With -compare it enforces the CI gate — any
// fingerprint mismatch between worker counts or against the baseline,
// or a virtual-FPS regression beyond -max-regression, exits nonzero.
// -min-speedup additionally requires the measured wall-clock speedup of
// the highest worker count over Workers=1, and -min-speedup-2w puts a
// floor (strictly above) under the Workers=2 row; either is skipped when
// the machine has fewer CPUs than that worker count, because the
// speedup would be physically unreachable (the deterministic checks
// still run). Every gate decision — ok, skipped, failed — is emitted as
// an explicit gate_status NDJSON row in -bench-out, carrying the worker
// count, the measured speedup, and the enforced threshold, and echoed to
// the run log, so a skipped gate is visible in CI instead of silently
// absent. -trend-out writes a markdown wall-time trend table (run vs the
// -compare baseline) for the CI job summary.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/tmerge/tmerge/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "comma-separated experiments to run (fig3..fig13,table2,pearson,ablations,querybench,servebench,histbench) or 'all'")
		seed    = flag.Uint64("seed", 42, "master seed for datasets and algorithms")
		videos  = flag.Int("videos", 3, "videos per dataset (0 = full profile size)")
		trials  = flag.Int("trials", 3, "independent trials to average stochastic algorithms over")
		workers = flag.Int("workers", 3, "parallel workers across trials")
		jsonOut = flag.String("json", "", "write experiment results as line-delimited JSON to this file ('-' for stdout)")

		transport = flag.String("transport", "inproc", "servebench frame transport: inproc (direct serve.Manager pushes) or http (loopback NDJSON ingress)")
		streams   = flag.String("streams", "", "comma-separated servebench fleet sizes (empty keeps the pinned default; dropping the large arm emits an explicit gate_status skip)")
		histDir   = flag.String("hist-dir", "", "history directory for the histbench experiment (empty uses a temp dir, removed afterwards)")

		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a pprof allocation profile (after a final GC) to this file")

		benchMode    = flag.Bool("bench", false, "run the pinned parallel window-executor benchmark instead of experiments")
		benchOut     = flag.String("bench-out", "", "write parallel-benchmark rows as line-delimited JSON to this file ('-' for stdout)")
		compare      = flag.String("compare", "", "baseline NDJSON file to gate the parallel benchmark against")
		maxRegress   = flag.Float64("max-regression", 0.15, "maximum allowed virtual-FPS regression vs the baseline (fraction)")
		minSpeedup   = flag.Float64("min-speedup", 0, "required wall-clock speedup of the largest worker count over Workers=1 (0 disables)")
		minSpeedup2w = flag.Float64("min-speedup-2w", 0, "wall-clock speedup floor the Workers=2 row must stay strictly above (0 disables)")
		trendOut     = flag.String("trend-out", "", "write a markdown wall-time trend table (run vs -compare baseline) to this file ('-' for stdout)")
	)
	flag.Parse()

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(2)
	}

	s := bench.NewSuite(*seed)
	s.VideosPerDataset = *videos
	s.Trials = *trials
	s.Workers = *workers
	w := os.Stdout

	if *benchMode {
		// The pinned benchmark config wins over the -videos default; an
		// explicitly passed -videos still overrides the pin.
		videosSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "videos" {
				videosSet = true
			}
		})
		code := runBenchGate(s, videosSet, *benchOut, *compare, *trendOut, *maxRegress, *minSpeedup, *minSpeedup2w)
		stopProfiles()
		os.Exit(code)
	}

	runners := map[string]func() any{
		"fig3": func() any { return s.Fig3(w) },
		"fig4": func() any { return s.Fig4(w) },
		"fig5": func() any { return s.Fig5(w) },
		"fig6": func() any { return s.Fig6(w) },
		"fig7": func() any {
			rows, elapsed := s.Fig7(w)
			return map[string]any{"rows": rows, "elapsed_ms": float64(elapsed) / float64(time.Millisecond)}
		},
		"fig8":  func() any { return s.Fig8(w) },
		"fig9":  func() any { return s.Fig9(w) },
		"fig10": func() any { return s.Fig10(w) },
		"fig11": func() any { return s.Fig11(w) },
		"fig12": func() any { return s.Fig12(w) },
		"fig13": func() any { return s.Fig13(w) },
		"querybench": func() any {
			cfg := bench.DefaultQueryBench()
			cfg.Clock = time.Now
			return s.QueryBench(w, cfg)
		},
		"servebench": func() any {
			cfg := bench.DefaultServeBench()
			cfg.Clock = time.Now
			cfg.Transport = *transport
			statuses := applyStreamsOverride(&cfg, *streams)
			rows, err := bench.ServeBench(context.Background(), w, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchrunner: servebench:", err)
				os.Exit(2)
			}
			if fails := bench.CheckServeBench(rows, cfg.Frames); len(fails) > 0 {
				for _, f := range fails {
					fmt.Fprintln(os.Stderr, "benchrunner: servebench FAIL:", f)
				}
				os.Exit(1)
			}
			if len(statuses) > 0 {
				return map[string]any{"rows": rows, "gates": statuses}
			}
			return rows
		},
		"histbench": func() any {
			cfg := bench.DefaultHistBench()
			cfg.Clock = time.Now
			cfg.Dir = *histDir
			if cfg.Dir == "" {
				dir, err := os.MkdirTemp("", "histbench-")
				if err != nil {
					fmt.Fprintln(os.Stderr, "benchrunner: histbench:", err)
					os.Exit(2)
				}
				defer os.RemoveAll(dir)
				cfg.Dir = dir
			}
			row, statuses, err := bench.HistBench(w, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchrunner: histbench:", err)
				os.Exit(2)
			}
			if fails := bench.CheckHistBench([]bench.HistBenchRow{row}, statuses, cfg.CompactEvery); len(fails) > 0 {
				for _, f := range fails {
					fmt.Fprintln(os.Stderr, "benchrunner: histbench FAIL:", f)
				}
				os.Exit(1)
			}
			return map[string]any{"row": row, "gates": statuses}
		},
		"table2":    func() any { return s.Table2(w) },
		"ablations": func() any { return s.Ablations(w) },
		"pearson":   func() any { return s.Pearson(w) },
	}

	var names []string
	if *exp == "all" {
		for name := range runners {
			names = append(names, name)
		}
		sort.Strings(names)
	} else {
		for _, name := range strings.Split(*exp, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, ok := runners[name]; !ok {
				fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q\n", name)
				os.Exit(2)
			}
			names = append(names, name)
		}
	}

	var records []bench.Record
	for _, name := range names {
		start := time.Now()
		payload := runners[name]()
		elapsed := time.Since(start)
		fmt.Fprintf(w, "[%s completed in %s]\n", name, elapsed.Round(time.Millisecond))
		records = append(records, bench.Record{
			Experiment: name,
			Seed:       *seed,
			Videos:     *videos,
			Trials:     *trials,
			ElapsedMS:  float64(elapsed) / float64(time.Millisecond),
			Payload:    payload,
		})
	}
	if *jsonOut != "" {
		if err := writeTo(*jsonOut, func(f *os.File) error { return bench.WriteRecords(f, records) }); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(2)
		}
	}
	stopProfiles()
}

// startProfiles begins CPU profiling and/or arms a heap-profile dump,
// returning a stop function that must run before the process exits (the
// bench path exits via os.Exit, so defers would not fire). Empty paths
// disable the corresponding profile; the returned stop is never nil.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			if cerr := cpuFile.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "benchrunner: closing cpu profile:", cerr)
			}
			return nil, fmt.Errorf("starting CPU profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "benchrunner: closing cpu profile:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchrunner: mem profile:", err)
				return
			}
			// A final GC makes the allocation profile reflect live and
			// cumulative allocations at end-of-run, not GC timing noise.
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "benchrunner: writing mem profile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "benchrunner: closing mem profile:", err)
			}
		}
	}, nil
}

// runBenchGate runs the pinned parallel benchmark and applies the CI
// gate, returning the process exit code.
func runBenchGate(s *bench.Suite, videosSet bool, out, comparePath, trendOut string, maxRegress, minSpeedup, minSpeedup2w float64) int {
	cfg := bench.DefaultParallelBench()
	if videosSet && s.VideosPerDataset > 0 {
		cfg.Videos = s.VideosPerDataset
	}
	cfg.Clock = time.Now
	rows := s.ParallelBench(os.Stdout, cfg)

	var baseline []bench.ParallelBenchResult
	if comparePath != "" {
		f, err := os.Open(comparePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			return 2
		}
		baseline, err = bench.DecodeParallelBench(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			return 2
		}
	}

	fails := bench.CheckParallelBench(rows, baseline, maxRegress)
	var statuses []bench.GateStatus

	// speedupGate applies one wall-speedup floor to the given row,
	// producing exactly one gate_status row (ok, skipped on a too-small
	// machine, or failed) that records the worker count, the measurement,
	// and the enforced threshold. strict requires the speedup strictly
	// above the floor (the Workers=2 floor is ">1.0": parallelism must
	// not lose to sequential, but need not win by a margin there).
	speedupGate := func(gate string, row bench.ParallelBenchResult, floor float64, strict bool) {
		st := bench.NewGateStatus(gate, bench.GateOK, "", runtime.NumCPU())
		st.Workers = row.Workers
		st.Speedup = row.WallSpeedup
		st.MinSpeedup = floor
		failed := row.WallSpeedup < floor || (strict && row.WallSpeedup == floor)
		switch {
		case runtime.NumCPU() < row.Workers:
			// The speedup is physically unreachable here; skip the gate —
			// loudly. The explicit row keeps a skipped gate from being
			// mistaken for a passed one in the artifact.
			st.Status = bench.GateSkipped
			st.Reason = fmt.Sprintf("%d CPU(s) < %d workers; %.1fx wall speedup unreachable (determinism and FPS gates still apply)",
				runtime.NumCPU(), row.Workers, floor)
			fmt.Printf("benchrunner: gate %s SKIPPED: %s\n", gate, st.Reason)
		case failed:
			st.Status = bench.GateFailed
			st.Reason = fmt.Sprintf("%.2fx wall speedup at %d workers, gate requires %.1fx", row.WallSpeedup, row.Workers, floor)
			fails = append(fails, "speedup: "+st.Reason)
		default:
			st.Reason = fmt.Sprintf("%.2fx wall speedup at %d workers (floor %.1fx)", row.WallSpeedup, row.Workers, floor)
		}
		statuses = append(statuses, st)
	}
	if minSpeedup > 0 && len(rows) > 0 {
		speedupGate("parallel_windows_wall_speedup", rows[len(rows)-1], minSpeedup, false)
	}
	if minSpeedup2w > 0 {
		for _, r := range rows {
			if r.Workers == 2 {
				speedupGate("parallel_windows_wall_speedup_2w", r, minSpeedup2w, true)
				break
			}
		}
	}

	if out != "" {
		err := writeTo(out, func(f *os.File) error {
			if err := bench.WriteParallelBench(f, rows); err != nil {
				return err
			}
			return bench.WriteGateStatuses(f, statuses)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			return 2
		}
	}
	if trendOut != "" {
		err := writeTo(trendOut, func(f *os.File) error {
			_, err := fmt.Fprint(f, bench.TrendTable(baseline, rows))
			return err
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			return 2
		}
	}

	for _, f := range fails {
		fmt.Fprintln(os.Stderr, "benchrunner: FAIL:", f)
	}
	if len(fails) > 0 {
		fmt.Fprintf(os.Stderr, "benchrunner: bench gate failed with %d finding(s)\n", len(fails))
		return 1
	}
	fmt.Println("benchrunner: bench gate passed")
	return 0
}

// applyStreamsOverride replaces the servebench fleet sizes with the
// -streams override. When the override drops the pinned largest arm
// (the fleet size the capacity numbers are quoted at), an explicit
// skipped gate_status row records that the big arm did not run — the
// same loud-skip convention as the wall-speedup gates, so a scaled-down
// local run is never mistaken for full coverage in the artifact.
func applyStreamsOverride(cfg *bench.ServeBenchConfig, streams string) []bench.GateStatus {
	if streams == "" {
		return nil
	}
	large := 0
	for _, n := range cfg.StreamCounts {
		if n > large {
			large = n
		}
	}
	var counts []int
	for _, part := range strings.Split(streams, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "benchrunner: -streams value %q is not a positive integer\n", part)
			os.Exit(2)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		fmt.Fprintln(os.Stderr, "benchrunner: -streams lists no fleet sizes")
		os.Exit(2)
	}
	cfg.StreamCounts = counts
	maxC := 0
	for _, n := range counts {
		if n > maxC {
			maxC = n
		}
	}
	if maxC >= large {
		return nil
	}
	st := bench.NewGateStatus("servebench_large_fleet", bench.GateSkipped,
		fmt.Sprintf("-streams capped the fleet at %d stream(s); the pinned %d-stream arm did not run", maxC, large),
		runtime.NumCPU())
	fmt.Printf("benchrunner: gate %s SKIPPED: %s\n", st.Gate, st.Reason)
	return []bench.GateStatus{st}
}

// writeTo opens path for writing ('-' means stdout) and hands it to fn.
func writeTo(path string, fn func(*os.File) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = fn(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
