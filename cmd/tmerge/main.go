// Command tmerge runs the full identify-and-merge ingestion pipeline on a
// synthetic scene: generate → track → select polyonymous candidates →
// merge → report tracking and query quality before and after.
//
// Usage:
//
//	tmerge -dataset mot17 -tracker tracktor -algo tmerge -k 0.05 -tau 10000
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/dataset"
	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/motmetrics"
	"github.com/tmerge/tmerge/internal/query"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/track"
)

func main() {
	var (
		dsName  = flag.String("dataset", "mot17", "dataset profile: mot17, kitti, pathtrack, highway")
		trName  = flag.String("tracker", "tracktor", "tracker: sort, deepsort, tracktor, uma, centertrack")
		algo    = flag.String("algo", "tmerge", "selection algorithm: bl, ps, lcb, tmerge")
		k       = flag.Float64("k", 0.05, "candidate proportion K")
		tau     = flag.Int("tau", 10000, "iteration budget for lcb/tmerge")
		eta     = flag.Float64("eta", 0.01, "sampling proportion for ps")
		batch   = flag.Int("batch", 1, "batch size (>1 uses the accelerator device)")
		seed    = flag.Uint64("seed", 42, "master seed")
		nVideos = flag.Int("videos", 2, "number of videos to process")
		verify  = flag.Bool("verify", true, "merge only inspected (true) candidates")
	)
	flag.Parse()

	profile, ok := dataset.Profiles(*seed)[*dsName]
	if !ok {
		fmt.Fprintf(os.Stderr, "tmerge: unknown dataset %q\n", *dsName)
		os.Exit(2)
	}
	if *nVideos > 0 && profile.NumVideos > *nVideos {
		profile.NumVideos = *nVideos
	}
	ds, err := profile.Generate()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmerge:", err)
		os.Exit(1)
	}

	var tr track.Tracker
	switch *trName {
	case "sort":
		tr = track.SORT()
	case "deepsort":
		tr = track.DeepSORT()
	case "tracktor":
		tr = track.Tracktor()
	case "uma":
		tr = track.UMA()
	case "centertrack":
		tr = track.CenterTrack()
	default:
		fmt.Fprintf(os.Stderr, "tmerge: unknown tracker %q\n", *trName)
		os.Exit(2)
	}

	var alg core.Algorithm
	switch *algo {
	case "bl":
		if *batch > 1 {
			alg = core.NewBaselineB(*batch)
		} else {
			alg = core.NewBaseline()
		}
	case "ps":
		if *batch > 1 {
			alg = core.NewPSB(*eta, *batch, *seed)
		} else {
			alg = core.NewPS(*eta, *seed)
		}
	case "lcb":
		if *batch > 1 {
			alg = core.NewLCBB(*tau, *seed)
		} else {
			alg = core.NewLCB(*tau, *seed)
		}
	case "tmerge":
		cfg := core.DefaultTMergeConfig(*seed)
		cfg.TauMax = *tau
		cfg.Batch = *batch
		alg = core.NewTMerge(cfg)
	default:
		fmt.Fprintf(os.Stderr, "tmerge: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}

	model := reid.NewModel(*seed^0x5EED, dataset.AppearanceDim)
	var dev device.Device
	if *batch > 1 {
		dev = device.NewAccelerator(device.DefaultAccelerator, 0)
	} else {
		dev = device.NewCPU(device.DefaultCPU)
	}

	countQ := query.CountQuery{MinFrames: 200}
	for _, v := range ds.Videos {
		ts := tr.Track(v.Detections)
		oracle := reid.NewOracle(model, dev)
		res := core.RunPipeline(ts, v.NumFrames, oracle, core.PipelineConfig{
			WindowLen: ds.WindowLen,
			K:         *k,
			Algorithm: alg,
			Verify:    *verify,
		})
		before := motmetrics.Identity(v.GT, ts)
		after := motmetrics.Identity(v.GT, res.Merged)
		fmt.Printf("%s: %d GT tracks, %d tracker tracks -> %d merged tracks\n",
			v.Name, v.GT.Len(), ts.Len(), res.Merged.Len())
		fmt.Printf("  %s: REC=%.3f FPS=%.2f distances=%d extractions=%d cache-hits=%d\n",
			alg.Name(), res.REC, res.FPS(), res.Stats.Distances, res.Stats.Extractions, res.Stats.CacheHits)
		fmt.Printf("  IDF1 %.3f -> %.3f   IDP %.3f -> %.3f   IDR %.3f -> %.3f\n",
			before.IDF1, after.IDF1, before.IDP, after.IDP, before.IDR, after.IDR)
		fmt.Printf("  Count query recall %.3f -> %.3f\n",
			countQ.Recall(v.GT, ts), countQ.Recall(v.GT, res.Merged))
	}
}
