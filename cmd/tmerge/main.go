// Command tmerge runs the full identify-and-merge ingestion pipeline on a
// synthetic scene: generate → track → select polyonymous candidates →
// merge → report tracking and query quality before and after.
//
// Usage:
//
//	tmerge -dataset mot17 -tracker tracktor -algo tmerge -k 0.05 -tau 10000
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/dataset"
	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/geom"
	"github.com/tmerge/tmerge/internal/ingest"
	"github.com/tmerge/tmerge/internal/motmetrics"
	"github.com/tmerge/tmerge/internal/query"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/synth"
	"github.com/tmerge/tmerge/internal/track"
)

func main() {
	var (
		dsName  = flag.String("dataset", "mot17", "dataset profile: mot17, kitti, pathtrack, highway")
		trName  = flag.String("tracker", "tracktor", "tracker: sort, deepsort, tracktor, uma, centertrack")
		algo    = flag.String("algo", "tmerge", "selection algorithm: bl, ps, lcb, tmerge")
		k       = flag.Float64("k", 0.05, "candidate proportion K")
		tau     = flag.Int("tau", 10000, "iteration budget for lcb/tmerge")
		eta     = flag.Float64("eta", 0.01, "sampling proportion for ps")
		batch   = flag.Int("batch", 1, "batch size (>1 uses the accelerator device)")
		seed    = flag.Uint64("seed", 42, "master seed")
		nVideos = flag.Int("videos", 2, "number of videos to process")
		verify  = flag.Bool("verify", true, "merge only inspected (true) candidates")
		stream  = flag.Bool("stream", false, "stream the first video frame-by-frame through the durable ingestor")
		window  = flag.Int("window", 0, "streaming: window length L (0: dataset default, else 1000)")
		ckpt    = flag.String("checkpoint", "", "streaming: checkpoint file to write (and resume from with -resume)")
		ckptN   = flag.Int("checkpoint-every", 1, "streaming: auto-checkpoint interval in windows")
		resume  = flag.Bool("resume", false, "streaming: restore session state from -checkpoint before ingesting")
		queries = flag.Bool("queries", false, "streaming: subscribe standing incremental queries and report per-window deltas")
	)
	flag.Parse()

	profile, ok := dataset.Profiles(*seed)[*dsName]
	if !ok {
		fmt.Fprintf(os.Stderr, "tmerge: unknown dataset %q\n", *dsName)
		os.Exit(2)
	}
	if *nVideos > 0 && profile.NumVideos > *nVideos {
		profile.NumVideos = *nVideos
	}
	ds, err := profile.Generate()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmerge:", err)
		os.Exit(1)
	}

	var eng *track.Engine
	switch *trName {
	case "sort":
		eng = track.SORT()
	case "deepsort":
		eng = track.DeepSORT()
	case "tracktor":
		eng = track.Tracktor()
	case "uma":
		eng = track.UMA()
	case "centertrack":
		eng = track.CenterTrack()
	default:
		fmt.Fprintf(os.Stderr, "tmerge: unknown tracker %q\n", *trName)
		os.Exit(2)
	}
	var tr track.Tracker = eng

	var alg core.Algorithm
	switch *algo {
	case "bl":
		if *batch > 1 {
			alg = core.NewBaselineB(*batch)
		} else {
			alg = core.NewBaseline()
		}
	case "ps":
		if *batch > 1 {
			alg = core.NewPSB(*eta, *batch, *seed)
		} else {
			alg = core.NewPS(*eta, *seed)
		}
	case "lcb":
		if *batch > 1 {
			alg = core.NewLCBB(*tau, *seed)
		} else {
			alg = core.NewLCB(*tau, *seed)
		}
	case "tmerge":
		cfg := core.DefaultTMergeConfig(*seed)
		cfg.TauMax = *tau
		cfg.Batch = *batch
		alg = core.NewTMerge(cfg)
	default:
		fmt.Fprintf(os.Stderr, "tmerge: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}

	model := reid.NewModel(*seed^0x5EED, dataset.AppearanceDim)
	var dev device.Device
	if *batch > 1 {
		dev = device.NewAccelerator(device.DefaultAccelerator, 0)
	} else {
		dev = device.NewCPU(device.DefaultCPU)
	}

	if *stream {
		wl := *window
		if wl == 0 {
			wl = ds.WindowLen
		}
		if wl == 0 {
			wl = 1000 // streams have no whole-video mode
		}
		cfg := ingest.Config{WindowLen: wl, K: *k, Algorithm: alg}
		if err := runStream(ds.Videos[0], eng, reid.NewOracle(model, dev), cfg, *ckpt, *ckptN, *resume, *queries); err != nil {
			fmt.Fprintln(os.Stderr, "tmerge:", err)
			os.Exit(1)
		}
		return
	}

	countQ := query.CountQuery{MinFrames: 200}
	for _, v := range ds.Videos {
		ts := tr.Track(v.Detections)
		oracle := reid.NewOracle(model, dev)
		res := core.RunPipeline(ts, v.NumFrames, oracle, core.PipelineConfig{
			WindowLen: ds.WindowLen,
			K:         *k,
			Algorithm: alg,
			Verify:    *verify,
		})
		before := motmetrics.Identity(v.GT, ts)
		after := motmetrics.Identity(v.GT, res.Merged)
		fmt.Printf("%s: %d GT tracks, %d tracker tracks -> %d merged tracks\n",
			v.Name, v.GT.Len(), ts.Len(), res.Merged.Len())
		fmt.Printf("  %s: REC=%.3f FPS=%.2f distances=%d extractions=%d cache-hits=%d\n",
			alg.Name(), res.REC, res.FPS(), res.Stats.Distances, res.Stats.Extractions, res.Stats.CacheHits)
		fmt.Printf("  IDF1 %.3f -> %.3f   IDP %.3f -> %.3f   IDR %.3f -> %.3f\n",
			before.IDF1, after.IDF1, before.IDP, after.IDP, before.IDR, after.IDR)
		fmt.Printf("  Count query recall %.3f -> %.3f\n",
			countQ.Recall(v.GT, ts), countQ.Recall(v.GT, res.Merged))
	}
}

// runStream pushes one video frame-by-frame through the durable
// ingestor, optionally resuming from — and periodically writing —
// a checkpoint file. With queries enabled it subscribes the four
// standing incremental queries and reports their per-window deltas.
func runStream(v *synth.Video, eng *track.Engine, oracle *reid.Oracle, cfg ingest.Config, ckptPath string, every int, resume, queries bool) error {
	sink := func(data []byte) error {
		// Write-then-rename so a crash mid-write can never destroy the
		// previous good checkpoint.
		tmp := ckptPath + ".tmp"
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			return err
		}
		return os.Rename(tmp, ckptPath)
	}
	if ckptPath != "" {
		cfg.AutoCheckpointEvery = every
		cfg.CheckpointSink = sink
	}

	var in *ingest.Ingestor
	if resume {
		if ckptPath == "" {
			return fmt.Errorf("-resume needs -checkpoint")
		}
		data, err := os.ReadFile(ckptPath)
		if err != nil {
			return err
		}
		in, err = ingest.Restore(eng, oracle, cfg, data)
		if err != nil {
			return err
		}
		fmt.Printf("%s: resumed at frame %d (window %d)\n", v.Name, in.FramesSeen(), len(in.Results()))
	} else {
		var err error
		in, err = ingest.New(eng, oracle, cfg)
		if err != nil {
			return err
		}
	}

	if queries {
		if err := subscribeStandingQueries(in, v.Bounds); err != nil {
			return err
		}
	}

	for f := in.FramesSeen(); f < v.NumFrames; f++ {
		reportDeltas(in.Push(v.Detections[f]))
		if err := in.CheckpointErr(); err != nil {
			return fmt.Errorf("checkpointing failed: %w", err)
		}
	}
	reportDeltas(in.Close())
	if ckptPath != "" {
		// Close can flush trailing windows without another Push, so the
		// auto-checkpoint hook never sees them; seal a final checkpoint
		// explicitly so the file always reflects the finished session.
		data, err := in.Checkpoint()
		if err == nil {
			err = sink(data)
		}
		if err != nil {
			return fmt.Errorf("final checkpoint: %w", err)
		}
	}

	merged := in.MergedTracks()
	totalMerged := 0
	for _, res := range in.Results() {
		totalMerged += len(res.Merged)
	}
	after := motmetrics.Identity(v.GT, merged)
	fmt.Printf("%s: streamed %d frames, %d windows, %d pairs merged -> %d tracks (IDF1 %.3f)\n",
		v.Name, in.FramesSeen(), len(in.Results()), totalMerged, merged.Len(), after.IDF1)
	if q := in.Quarantine(); q.TotalRejected > 0 {
		reasons := make([]string, 0, len(q.Counts))
		for r := range q.Counts {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		fmt.Printf("  quarantined %d inputs (%d retained, %d dropped)\n", q.TotalRejected, len(q.Rejected), q.Dropped)
		for _, r := range reasons {
			fmt.Printf("    %-24s %d\n", r, q.Counts[r])
		}
	}
	if queries {
		for _, name := range in.Subscriptions() {
			op := in.Operator(name)
			st := op.Stats()
			fmt.Printf("  query %-9s %d rows (+%d -%d over the stream, %d tracks scanned)\n",
				name, len(op.Results()), st.Asserted, st.Retracted, st.Scanned)
		}
	}
	if ckptPath != "" {
		fmt.Printf("  checkpoint: %s\n", ckptPath)
	}
	return nil
}

// subscribeStandingQueries registers the four incremental operators on
// the session. After a resume with a checkpoint that carried their
// state, Subscribe claims it by name and the bootstrap deltas are nil.
func subscribeStandingQueries(in *ingest.Ingestor, bounds geom.Rect) error {
	left := geom.Rect{X: bounds.X, Y: bounds.Y, W: bounds.W / 2, H: bounds.H}
	subs := []struct {
		name string
		op   query.Incremental
	}{
		{"count", query.NewIncCount(query.CountQuery{MinFrames: 200})},
		{"region", query.NewIncRegion(query.RegionQuery{Region: left, MinFrames: 100})},
		{"cooccur", query.NewIncCoOccur(query.CoOccurQuery{GroupSize: 2, MinFrames: 100})},
		{"precedes", query.NewIncPrecedes(query.PrecedesQuery{MinGap: 50, MinOverlap: 30})},
	}
	for _, s := range subs {
		deltas, err := in.Subscribe(s.name, s.op)
		if err != nil {
			return fmt.Errorf("subscribing %s: %w", s.name, err)
		}
		if len(deltas) > 0 {
			fmt.Printf("  query %-9s bootstrapped %d rows\n", s.name, len(deltas))
		}
	}
	return nil
}

// reportDeltas prints one line per closed window whose subscriptions
// changed their answers: per query, the asserts and retracts.
func reportDeltas(results []ingest.WindowResult) {
	for _, res := range results {
		line := ""
		for _, qd := range res.Queries {
			asserts, retracts := 0, 0
			for _, d := range qd.Deltas {
				if d.Kind == query.Assert {
					asserts++
				} else {
					retracts++
				}
			}
			if asserts > 0 || retracts > 0 {
				line += fmt.Sprintf("  %s +%d/-%d", qd.Name, asserts, retracts)
			}
		}
		if line != "" {
			fmt.Printf("  window [%d,%d]:%s\n", res.Window.Start, res.Window.End, line)
		}
	}
}
