package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/fault"
	"github.com/tmerge/tmerge/internal/ingest"
	"github.com/tmerge/tmerge/internal/ingress"
	"github.com/tmerge/tmerge/internal/serve"
	"github.com/tmerge/tmerge/internal/serve/loadgen"
	"github.com/tmerge/tmerge/internal/video"
)

// serveConfig maps the daemon flags onto the shared pool configuration —
// identical for the in-process and network modes.
func serveConfig(c cfg) serve.Config {
	sc := serve.Config{
		Workers:         c.workers,
		WindowBudget:    c.budget,
		QueueAdmission:  c.budget > 0,
		DefaultQueueCap: c.queueCap,
		TurnFrames:      c.turn,
		Shed:            c.shed,
	}
	if c.histDir != "" {
		sc.History = &serve.HistoryRoot{
			Dir:               c.histDir,
			HotHorizon:        c.histHorizon,
			WindowsPerSegment: c.histSegWindows,
			CompactEvery:      c.histCompact,
		}
	}
	return sc
}

// specFunc builds network registrations: the wire request's seed, window
// length, and checkpoint cadence override the daemon defaults, and the
// daemon's fault flags (oracle outages, transients) apply to every
// network stream's pipeline just as they do to the loadgen fleet.
func specFunc(c cfg, outageWin *fault.Outage) ingress.SpecFunc {
	return func(id string, req ingress.RegisterRequest) (serve.StreamSpec, error) {
		wl := req.WindowLen
		if wl <= 0 {
			wl = c.windowLen
		}
		ck := req.CheckpointEvery
		if ck <= 0 {
			ck = c.ckptEvery
		}
		faulty := c.transient > 0 || outageWin != nil
		return serve.StreamSpec{
			Ingest: ingest.Config{
				WindowLen:           wl,
				K:                   0.05,
				Algorithm:           core.NewTMerge(core.DefaultTMergeConfig(req.Seed)),
				AutoCheckpointEvery: ck,
			},
			Pipeline: pipelineFactory(req.Seed, faulty, c.transient, outageWin),
			QueueCap: req.QueueCap,
		}, nil
	}
}

// runServe is the -http mode: a network-facing daemon that accepts
// register/push/finish over HTTP and drains to checkpoint on SIGTERM or
// SIGINT, so a restarted daemon (same -checkpoint-dir) resumes every
// stream where the flush stopped.
func runServe(c cfg) int {
	outageWin, _, _, code := parseFaultFlags(c)
	if code != 0 {
		return code
	}
	var store ingress.Store
	where := "in-memory (resume state dies with the process; set -checkpoint-dir to survive restarts)"
	if c.ckptDir != "" {
		ds, err := ingress.NewDirStore(c.ckptDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tmerged:", err)
			return 1
		}
		store = ds
		where = c.ckptDir
	} else {
		store = ingress.NewMemStore()
	}
	srv, err := ingress.NewServer(ingress.ServerConfig{
		Serve: serveConfig(c),
		Store: store,
		Spec:  specFunc(c, outageWin),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmerged:", err)
		return 1
	}
	ln, err := net.Listen("tcp", c.httpAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmerged:", err)
		return 1
	}
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Printf("tmerged: listening on http://%s (workers %d, checkpoints: %s)\n",
		ln.Addr(), c.workers, where)

	statusDone := make(chan struct{})
	var statusWG sync.WaitGroup
	if c.statusMS > 0 {
		statusWG.Add(1)
		go func() {
			defer statusWG.Done()
			for {
				select {
				case <-statusDone:
					return
				case <-time.After(time.Duration(c.statusMS) * time.Millisecond):
					printNetStatus(srv.Status())
				}
			}
		}()
	}
	defer func() {
		close(statusDone)
		statusWG.Wait()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "tmerged: listener:", err)
		return 1
	case got := <-sig:
		fmt.Printf("tmerged: %v: draining to checkpoint (timeout %dms)...\n", got, c.drainMS)
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(c.drainMS)*time.Millisecond)
		defer cancel()
		err := srv.Drain(ctx)
		_ = hs.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "tmerged: drain:", err)
			return 1
		}
		fmt.Println("tmerged: drained; checkpoints sealed at frame boundaries")
		return 0
	}
}

// runPush is the -push mode: the retrying network client. It feeds the
// deterministic loadgen fleet to a remote daemon, riding the protocol's
// backpressure and resuming transparently if the daemon restarts
// mid-stream.
func runPush(c cfg) int {
	ctx := context.Background()
	fleet, err := loadgen.Generate(loadgen.Config{Seed: c.seed, Streams: c.streams, Frames: c.frames})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmerged:", err)
		return 1
	}
	fmt.Printf("tmerged: pushing %d streams × %d frames to %s (batch %d)\n",
		c.streams, fleet[0].Video.NumFrames, c.pushURL, c.batchFrames)

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		code int
	)
	for _, s := range fleet {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			fail := func(err error) {
				mu.Lock()
				fmt.Fprintf(os.Stderr, "tmerged: %s: %v\n", s.ID, err)
				code = 1
				mu.Unlock()
			}
			cl, err := ingress.NewClient(ingress.ClientConfig{
				BaseURL:     c.pushURL,
				Stream:      s.ID,
				Seed:        s.Seed,
				BatchFrames: c.batchFrames,
			})
			if err != nil {
				fail(err)
				return
			}
			reg, err := cl.Register(ctx, ingress.RegisterRequest{
				Seed: s.Seed, WindowLen: c.windowLen, CheckpointEvery: c.ckptEvery,
			})
			if err != nil {
				fail(err)
				return
			}
			if reg.Resumed {
				fmt.Printf("tmerged: %s resumed from checkpoint at frame %d\n", s.ID, reg.NextFrame)
			}
			for f, dets := range s.Video.Detections {
				if err := cl.Push(ctx, video.FrameIndex(f), dets); err != nil {
					fail(fmt.Errorf("push frame %d: %w", f, err))
					return
				}
			}
			fin, err := cl.Finish(ctx)
			if err != nil {
				fail(err)
				return
			}
			st := cl.Stats()
			fmt.Printf("tmerged: %s done: %d frames, %d windows (%d degraded), fingerprint %.12s | %d requests, %d retries, %d throttled, %d reattaches, %d dup-acked\n",
				s.ID, fin.Frames, fin.Windows, fin.DegradedWindows, fin.Fingerprint,
				st.Requests, st.Retries, st.Throttled, st.Reattaches, st.DuplicatesAcked)
		}()
	}
	wg.Wait()
	return code
}

// runNetSoak is the -net-soak CI mode: a self-contained end-to-end soak
// of the network ingress. A loopback fleet pushes through a
// fault-injecting TCP proxy into daemon A; once every stream is half
// delivered, A drains to a durable checkpoint directory and exits,
// clients hammer the dead endpoint (observable transport retries), and
// daemon B over the same directory takes over. The run fails unless
// every stream's fingerprint equals an uninterrupted in-process run,
// at least one push was retried, every client re-registered, and the
// proxy actually injected faults.
func runNetSoak(c cfg) int {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "tmerged-soak-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmerged:", err)
		return 1
	}
	defer os.RemoveAll(dir)
	store, err := ingress.NewDirStore(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmerged:", err)
		return 1
	}
	fleet, err := loadgen.Generate(loadgen.Config{Seed: c.seed, Streams: c.streams, Frames: c.frames})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmerged:", err)
		return 1
	}
	frames := fleet[0].Video.NumFrames
	half := frames / 2
	fmt.Printf("tmerged: net soak: %d streams × %d frames, drain+restart at frame %d, checkpoints in %s\n",
		c.streams, frames, half, dir)

	up := func() (*ingress.Server, *http.Server, net.Listener, chan struct{}, error) {
		srv, err := ingress.NewServer(ingress.ServerConfig{
			Serve: serveConfig(c),
			Store: store,
			Spec:  specFunc(c, nil),
		})
		if err != nil {
			return nil, nil, nil, nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Shutdown()
			return nil, nil, nil, nil, err
		}
		hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
		served := make(chan struct{})
		go func() { _ = hs.Serve(ln); close(served) }()
		return srv, hs, ln, served, nil
	}
	srvA, hsA, lnA, servedA, err := up()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmerged:", err)
		return 1
	}
	proxy, err := fault.NewProxy("127.0.0.1:0", lnA.Addr().String(), fault.NetConfig{
		Seed:          c.seed ^ 0xC4A05,
		DropRate:      0.10,
		StallRate:     0.05,
		StallFor:      5 * time.Millisecond,
		TruncateRate:  0.10,
		TruncateAfter: 2048,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmerged:", err)
		return 1
	}
	defer proxy.Close()
	transport := &http.Transport{DisableKeepAlives: true} // fresh conn per request: every request rolls the fault dice
	defer transport.CloseIdleConnections()

	var (
		wg       sync.WaitGroup
		halfDone sync.WaitGroup
		resume   = make(chan struct{})
		mu       sync.Mutex
		code     int
		clients  = make([]*ingress.Client, len(fleet))
		fins     = make([]ingress.FinishResponse, len(fleet))
	)
	// Every abort path below releases the waiting clients; OnceFunc makes
	// the overlapping paths (abort-at-half, drain failure, restart
	// failure, normal handover) double-close-proof.
	release := sync.OnceFunc(func() { close(resume) })
	fail := func(id string, err error) {
		mu.Lock()
		fmt.Fprintf(os.Stderr, "tmerged: soak %s: %v\n", id, err)
		code = 1
		mu.Unlock()
	}
	halfDone.Add(len(fleet))
	for i, s := range fleet {
		i, s := i, s
		cl, err := ingress.NewClient(ingress.ClientConfig{
			BaseURL:        "http://" + proxy.Addr(),
			Stream:         s.ID,
			Seed:           s.Seed,
			HTTPClient:     &http.Client{Transport: transport, Timeout: 2 * time.Minute},
			RequestTimeout: 500 * time.Millisecond,
			MaxAttempts:    64,
			BackoffBase:    2 * time.Millisecond,
			BackoffMax:     25 * time.Millisecond,
			BatchFrames:    c.batchFrames,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "tmerged:", err)
			return 1
		}
		clients[i] = cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cl.Register(ctx, ingress.RegisterRequest{
				Seed: s.Seed, WindowLen: c.windowLen, CheckpointEvery: c.ckptEvery,
			}); err != nil {
				fail(s.ID, err)
				halfDone.Done()
				return
			}
			for f := 0; f < half; f++ {
				if err := cl.Push(ctx, video.FrameIndex(f), s.Video.Detections[f]); err != nil {
					fail(s.ID, fmt.Errorf("push %d: %w", f, err))
					halfDone.Done()
					return
				}
			}
			halfDone.Done()
			<-resume // daemon A drains and daemon B takes over while we wait
			for f := half; f < frames; f++ {
				if err := cl.Push(ctx, video.FrameIndex(f), s.Video.Detections[f]); err != nil {
					fail(s.ID, fmt.Errorf("push %d after restart: %w", f, err))
					return
				}
			}
			fin, err := cl.Finish(ctx)
			if err != nil {
				fail(s.ID, err)
				return
			}
			fins[i] = fin
		}()
	}

	halfDone.Wait()
	mu.Lock()
	aborted := code != 0
	mu.Unlock()
	if aborted {
		release()
		wg.Wait()
		return 1
	}

	// Graceful handover: drain A (flush queues, seal frame-boundary
	// checkpoints into the store), then take its listener away so the
	// waiting clients' next pushes visibly fail and retry.
	drainCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	err = srvA.Drain(drainCtx)
	cancel()
	_ = hsA.Close()
	<-servedA
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmerged: soak drain:", err)
		release()
		wg.Wait()
		return 1
	}
	sealed := 0
	for _, s := range fleet {
		if _, ok, _ := store.Get(s.ID); ok {
			sealed++
		}
	}
	fmt.Printf("tmerged: daemon A drained: %d/%d checkpoints sealed; restarting behind the proxy\n", sealed, len(fleet))
	if sealed != len(fleet) {
		fmt.Fprintf(os.Stderr, "tmerged: soak: drain sealed %d checkpoints, want %d\n", sealed, len(fleet))
		code = 1
	}

	srvB, hsB, lnB, servedB, err := up()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmerged:", err)
		release()
		wg.Wait()
		return 1
	}
	defer func() {
		srvB.Shutdown()
		_ = hsB.Close()
		<-servedB
	}()
	// Release the clients against the dead endpoint first and wait for
	// fresh connection attempts — the soak must observe real retries —
	// then point the proxy at daemon B.
	base := proxy.Counters().Conns
	release()
	for i := 0; i < 5000 && proxy.Counters().Conns < base+3; i++ {
		time.Sleep(2 * time.Millisecond)
	}
	if proxy.Counters().Conns < base+3 {
		fmt.Fprintln(os.Stderr, "tmerged: soak: no pushes observed against the dead daemon")
		code = 1
	}
	proxy.SetBackend(lnB.Addr().String())
	wg.Wait()
	mu.Lock()
	if code != 0 {
		mu.Unlock()
		return 1
	}
	mu.Unlock()

	// Verdicts: bit-identical fingerprints against uninterrupted
	// in-process runs, observed retries and reattaches, and real faults.
	var retries, reattaches, dups int64
	for i, s := range fleet {
		ref, err := sequentialRef(s, c)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tmerged: soak reference:", err)
			return 1
		}
		if fins[i].Fingerprint != ref {
			fmt.Fprintf(os.Stderr, "tmerged: soak %s: fingerprint %s != sequential %s\n", s.ID, fins[i].Fingerprint, ref)
			code = 1
		}
		if fins[i].Frames != frames {
			fmt.Fprintf(os.Stderr, "tmerged: soak %s: %d frames, want %d\n", s.ID, fins[i].Frames, frames)
			code = 1
		}
		st := clients[i].Stats()
		if st.Reattaches < 1 {
			fmt.Fprintf(os.Stderr, "tmerged: soak %s: never re-registered across the restart\n", s.ID)
			code = 1
		}
		retries += st.Retries
		reattaches += st.Reattaches
		dups += st.DuplicatesAcked
	}
	if retries < 1 {
		fmt.Fprintln(os.Stderr, "tmerged: soak: no retried push observed")
		code = 1
	}
	nc := proxy.Counters()
	if nc.Dropped+nc.Stalled+nc.Truncated == 0 {
		fmt.Fprintf(os.Stderr, "tmerged: soak: proxy injected no faults across %d connections\n", nc.Conns)
		code = 1
	}
	fmt.Printf("tmerged: soak: conns=%d dropped=%d stalled=%d truncated=%d retries=%d reattaches=%d dup-acked=%d\n",
		nc.Conns, nc.Dropped, nc.Stalled, nc.Truncated, retries, reattaches, dups)
	if code == 0 {
		fmt.Printf("tmerged: soak PASS: %d streams bit-identical across drain/restart under network chaos\n", len(fleet))
	}
	return code
}

// sequentialRef computes a stream's uninterrupted in-process
// fingerprint under the same configuration the soak daemons serve.
func sequentialRef(s loadgen.Stream, c cfg) (string, error) {
	engine, oracle := pipelineFactory(s.Seed, false, 0, nil)()
	ic := ingest.Config{
		WindowLen:           c.windowLen,
		K:                   0.05,
		Algorithm:           core.NewTMerge(core.DefaultTMergeConfig(s.Seed)),
		AutoCheckpointEvery: c.ckptEvery,
	}
	if c.ckptEvery > 0 {
		ic.CheckpointSink = func([]byte) error { return nil }
	}
	ing, err := ingest.New(engine, oracle, ic)
	if err != nil {
		return "", err
	}
	for f, dets := range s.Video.Detections {
		ing.PushAt(video.FrameIndex(f), dets)
	}
	ing.Close()
	return ing.Result().Fingerprint(), nil
}

// printNetStatus renders the network daemon's status document, the
// serve-layer health table plus the ingress dedup marks.
func printNetStatus(doc ingress.StatusResponse) {
	if doc.Draining {
		fmt.Println("tmerged: DRAINING")
	}
	fmt.Printf("%-12s %-12s %7s %6s %7s %9s %8s %9s %7s %s\n",
		"STREAM", "STATE", "FRAMES", "QUEUE", "WINDOWS", "DEGRADED", "RESTART", "ACKEDSEQ", "DUPS", "ERR")
	for _, st := range doc.Streams {
		errStr := st.Err
		if len(errStr) > 40 {
			errStr = errStr[:37] + "..."
		}
		fmt.Printf("%-12s %-12s %7d %6d %7d %9d %8d %9d %7d %s\n",
			st.ID, st.State, st.Frames, st.Queued, st.Windows,
			st.DegradedWindows, st.Restarts, st.AckedSeq, st.Duplicates, errStr)
	}
}
