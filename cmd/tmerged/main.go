// Command tmerged is the long-lived multi-stream serving daemon: it
// multiplexes N camera streams over the internal/serve layer's bounded
// worker pool with admission control, per-stream backpressure, and
// crash-recovering supervision, reporting per-stream health through the
// manager's snapshot API while it runs.
//
// The repo has no real camera ingress, so tmerged serves the
// deterministic loadgen fleet — the same fixtures servebench and the
// chaos test use — and doubles as the CI soak harness: scripted oracle
// outages (-outage), random transient faults (-transient), and forced
// stream crashes (-crash) exercise degradation and recovery end to end,
// and -expect-restarts fails the process if supervision never actually
// recovered anything.
//
// Beyond the in-process fleet, three network modes ride the
// internal/ingress HTTP protocol:
//
//   - -http ADDR serves register/push/finish/status endpoints; SIGTERM
//     (or SIGINT) drains every stream to a frame-boundary checkpoint in
//     -checkpoint-dir before exiting, and a restarted daemon over the
//     same directory resumes each stream exactly where the flush
//     stopped.
//   - -push URL runs the retrying client side: it feeds the loadgen
//     fleet to a remote daemon with per-request deadlines, seeded
//     backoff, and transparent re-registration after a daemon restart.
//   - -net-soak is the CI chaos stage: fleet + fault-injecting TCP
//     proxy + drain/restart handover, failing unless recovery was
//     bit-identical and retries/reattaches/faults were actually
//     observed.
//
// With -history-dir every stream journals its committed windows to a
// segmented on-disk log under <dir>/<stream-id> (serve.HistoryRoot):
// drains seal the active segment as part of the final checkpoint, a
// restarted daemon resumes each stream against its own log, and
// time-travel cuts are served through Manager.AsOf.
//
// Usage:
//
//	tmerged -streams 4 -frames 300
//	tmerged -streams 4 -frames 300 -history-dir /var/lib/tmerged/hist -history-compact-every 4
//	tmerged -streams 6 -frames 240 -outage 3:6 -transient 0.05 \
//	        -crash 2:150 -expect-restarts 1 -status-ms 250
//	tmerged -http 127.0.0.1:7171 -checkpoint-dir /var/lib/tmerged
//	tmerged -push http://127.0.0.1:7171 -streams 4 -frames 300
//	tmerged -net-soak -streams 3 -frames 160
//
// Status lines (one table per tick) show each stream's health state
// (healthy/degraded/quarantined/recovering/stopped), frame progress,
// queue depth, committed and degraded windows, supervisor restarts,
// quarantined-input count, and breaker state.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/dataset"
	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/fault"
	"github.com/tmerge/tmerge/internal/ingest"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/serve"
	"github.com/tmerge/tmerge/internal/serve/loadgen"
	"github.com/tmerge/tmerge/internal/track"
	"github.com/tmerge/tmerge/internal/video"
)

func main() {
	var (
		streams   = flag.Int("streams", 4, "number of camera streams to serve")
		frames    = flag.Int("frames", 300, "frames per stream")
		seed      = flag.Uint64("seed", 1234, "loadgen base seed (stream i runs at StreamSeed(seed, i))")
		workers   = flag.Int("workers", 4, "shared worker pool size")
		queueCap  = flag.Int("queue-cap", 64, "per-stream frame queue bound")
		turn      = flag.Int("turn-frames", 16, "frames per scheduling turn (fairness bound)")
		windowLen = flag.Int("window-len", 80, "ingest window length (frames, even)")
		budget    = flag.Int("budget", 0, "aggregate in-flight window budget (0 disables admission control)")
		shed      = flag.Bool("shed", false, "shed pushes with ErrOverloaded instead of blocking when a queue is full")
		ckptEvery = flag.Int("checkpoint-every", 2, "auto-checkpoint every N windows (0 disables; recovery then replays full history)")

		outage    = flag.String("outage", "", "scripted oracle outage FROM:TO (submission indices, half-open) on every stream; empty disables")
		transient = flag.Float64("transient", 0, "oracle transient-failure rate in [0,1]")
		crash     = flag.String("crash", "", "forced crash STREAM:FRAME — stream index crashes before that frame and must recover")

		statusMS       = flag.Int("status-ms", 500, "status table interval in milliseconds (0 disables)")
		expectRestarts = flag.Int("expect-restarts", 0, "fail unless the fleet performed at least N supervisor restarts (soak assertion)")

		histDir        = flag.String("history-dir", "", "root directory for per-stream log-structured histories (empty disables; stream S journals under history-dir/S)")
		histHorizon    = flag.Int("history-horizon", 0, "tiered-view hot horizon in frames (0 selects 4×window-len; must be ≥ 2×window-len)")
		histSegWindows = flag.Int("history-segment-windows", 0, "windows per sealed history segment (0 selects the histlog default)")
		histCompact    = flag.Int("history-compact-every", 0, "fold sealed history segments into a base snapshot every N raw segments (0 never compacts)")

		httpAddr = flag.String("http", "", "serve the network ingress API on this address (e.g. 127.0.0.1:7171) instead of the in-process loadgen fleet; SIGTERM drains to checkpoint")
		ckptDir  = flag.String("checkpoint-dir", "", "durable checkpoint directory for -http mode (empty keeps resume state in memory)")
		drainMS  = flag.Int("drain-timeout-ms", 30000, "bound on the SIGTERM drain in -http mode")
		pushURL  = flag.String("push", "", "push the loadgen fleet to a remote daemon at this base URL (e.g. http://127.0.0.1:7171) instead of serving")
		batch    = flag.Int("batch-frames", 4, "client push batch size for -push and -net-soak modes")
		netSoak  = flag.Bool("net-soak", false, "run the self-contained network chaos soak (fault proxy + drain/restart) and exit nonzero unless recovery was bit-identical")
	)
	flag.Parse()
	c := cfg{
		streams: *streams, frames: *frames, seed: *seed,
		workers: *workers, queueCap: *queueCap, turn: *turn,
		windowLen: *windowLen, budget: *budget, shed: *shed, ckptEvery: *ckptEvery,
		outage: *outage, transient: *transient, crash: *crash,
		statusMS: *statusMS, expectRestarts: *expectRestarts,
		histDir: *histDir, histHorizon: *histHorizon,
		histSegWindows: *histSegWindows, histCompact: *histCompact,
		httpAddr: *httpAddr, ckptDir: *ckptDir, drainMS: *drainMS,
		pushURL: *pushURL, batchFrames: *batch,
	}
	switch {
	case *netSoak:
		os.Exit(runNetSoak(c))
	case *httpAddr != "":
		os.Exit(runServe(c))
	case *pushURL != "":
		os.Exit(runPush(c))
	default:
		os.Exit(run(c))
	}
}

type cfg struct {
	streams, frames              int
	seed                         uint64
	workers, queueCap, turn      int
	windowLen, budget, ckptEvery int
	shed                         bool
	outage                       string
	transient                    float64
	crash                        string
	statusMS, expectRestarts     int

	histDir                                  string
	histHorizon, histSegWindows, histCompact int

	httpAddr, ckptDir    string
	drainMS, batchFrames int
	pushURL              string
}

// parseFaultFlags decodes the shared fault-injection flags; a nonzero
// code means a flag was malformed (and has been reported).
func parseFaultFlags(c cfg) (outageWin *fault.Outage, crashStream, crashFrame, code int) {
	crashStream = -1
	if c.outage != "" {
		var from, to int64
		if _, err := fmt.Sscanf(c.outage, "%d:%d", &from, &to); err != nil {
			fmt.Fprintf(os.Stderr, "tmerged: bad -outage %q (want FROM:TO): %v\n", c.outage, err)
			return nil, -1, 0, 2
		}
		outageWin = &fault.Outage{From: from, To: to}
	}
	if c.crash != "" {
		if _, err := fmt.Sscanf(c.crash, "%d:%d", &crashStream, &crashFrame); err != nil {
			fmt.Fprintf(os.Stderr, "tmerged: bad -crash %q (want STREAM:FRAME): %v\n", c.crash, err)
			return nil, -1, 0, 2
		}
	}
	return outageWin, crashStream, crashFrame, 0
}

func run(c cfg) int {
	outageWin, crashStream, crashFrame, code := parseFaultFlags(c)
	if code != 0 {
		return code
	}

	fleet, err := loadgen.Generate(loadgen.Config{Seed: c.seed, Streams: c.streams, Frames: c.frames})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmerged:", err)
		return 1
	}
	fmt.Printf("tmerged: serving %d streams × %d frames (seed %d, %d workers, window %d)\n",
		c.streams, fleet[0].Video.NumFrames, c.seed, c.workers, c.windowLen)

	m := serve.NewManager(serveConfig(c))
	defer m.Shutdown()

	for i, s := range fleet {
		streamSeed := s.Seed
		faulty := c.transient > 0 || outageWin != nil
		spec := serve.StreamSpec{
			ID: s.ID,
			Ingest: ingest.Config{
				WindowLen:           c.windowLen,
				K:                   0.05,
				Algorithm:           core.NewTMerge(core.DefaultTMergeConfig(streamSeed)),
				AutoCheckpointEvery: c.ckptEvery,
			},
			Pipeline: pipelineFactory(streamSeed, faulty, c.transient, outageWin),
		}
		if i == crashStream {
			spec.CrashAtFrame = crashFrame
		}
		if err := m.Register(spec); err != nil {
			fmt.Fprintf(os.Stderr, "tmerged: register %s: %v\n", s.ID, err)
			return 1
		}
	}

	// Status reporter: snapshot-API consumer, concurrent with everything.
	statusDone := make(chan struct{})
	var statusWG sync.WaitGroup
	if c.statusMS > 0 {
		statusWG.Add(1)
		go func() {
			defer statusWG.Done()
			for {
				select {
				case <-statusDone:
					return
				case <-time.After(time.Duration(c.statusMS) * time.Millisecond):
					printStatus(m.Snapshot())
				}
			}
		}()
	}

	// One pusher per stream; blocking pushes ride the backpressure.
	var wg sync.WaitGroup
	pushErrs := make(chan error, len(fleet))
	for _, s := range fleet {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for f, dets := range s.Video.Detections {
				if err := m.Push(s.ID, video.FrameIndex(f), dets); err != nil {
					pushErrs <- fmt.Errorf("push %s frame %d: %w", s.ID, f, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(pushErrs)
	for err := range pushErrs {
		fmt.Fprintln(os.Stderr, "tmerged:", err)
		return 1
	}

	code = 0
	for _, s := range fleet {
		res, err := m.Finish(s.ID)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tmerged: finish %s: %v\n", s.ID, err)
			code = 1
			continue
		}
		fmt.Printf("tmerged: %s done: %d frames, %d windows (%d degraded), fingerprint %.12s\n",
			s.ID, res.FramesProcessed, len(res.Windows), res.DegradedWindows, res.Fingerprint())
	}
	close(statusDone)
	statusWG.Wait()

	final := m.Snapshot()
	printStatus(final)
	restarts := 0
	for _, st := range final {
		restarts += st.Restarts
	}
	if c.expectRestarts > 0 && restarts < c.expectRestarts {
		fmt.Fprintf(os.Stderr, "tmerged: soak assertion failed: %d supervisor restart(s), expected at least %d\n",
			restarts, c.expectRestarts)
		code = 1
	}
	m.Shutdown()
	if code == 0 {
		fmt.Printf("tmerged: all %d streams drained cleanly (%d supervisor restarts)\n", len(fleet), restarts)
	}
	return code
}

// pipelineFactory builds one stream's isolated pipeline: fresh engine,
// model, and device chain per call (initial start and every recovery).
func pipelineFactory(seed uint64, faulty bool, transient float64, outageWin *fault.Outage) serve.PipelineFactory {
	return func() (*track.Engine, *reid.Oracle) {
		var dev device.Device = device.NewCPU(device.DefaultCPU)
		if faulty {
			fc := fault.Config{
				Seed:           seed ^ 0xFA017,
				TransientRate:  transient,
				FailureLatency: 50 * time.Microsecond,
			}
			if outageWin != nil {
				fc.Schedule = fault.NewSchedule(*outageWin)
			}
			dev = device.NewResilientDevice(fault.NewFlaky(dev, fc),
				device.RetryPolicy{MaxAttempts: 2, Jitter: -1},
				device.BreakerConfig{Threshold: 2, Cooldown: -1, CooldownRejections: -1},
				seed^0xD1CE)
		}
		model := reid.NewModel(seed^0x5EED, dataset.AppearanceDim)
		return track.Tracktor(), reid.NewOracle(model, dev)
	}
}

// printStatus renders one health table from a snapshot.
func printStatus(snap []serve.StreamStatus) {
	fmt.Printf("%-12s %-12s %7s %6s %7s %9s %8s %8s %-9s %s\n",
		"STREAM", "STATE", "FRAMES", "QUEUE", "WINDOWS", "DEGRADED", "RESTART", "REJECTS", "BREAKER", "ERR")
	for _, st := range snap {
		errStr := st.Err
		if len(errStr) > 40 {
			errStr = errStr[:37] + "..."
		}
		fmt.Printf("%-12s %-12s %7d %6d %7d %9d %8d %8d %-9s %s\n",
			st.ID, st.State, st.Frames, st.Queued, st.Windows,
			st.DegradedWindows, st.Restarts, st.Quarantined, st.Breaker, errStr)
	}
}
