// Command calibrate implements the paper's deployment-calibration
// workflow: given a labelled sample of representative video (here: a
// synthetic scene with exact ground truth), it recommends the candidate
// proportion K for a target recall (§III), the (L, thr_S) hyper-parameters
// by grid search (§V-F), and an iteration budget τmax sized to the
// observed pair universes.
//
// Usage:
//
//	calibrate -dataset pathtrack -target 0.95
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/dataset"
	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/motmetrics"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/track"
	"github.com/tmerge/tmerge/internal/video"
)

func main() {
	var (
		dsName  = flag.String("dataset", "pathtrack", "labelled sample profile: mot17, kitti, pathtrack, highway")
		seed    = flag.Uint64("seed", 42, "master seed")
		nVideos = flag.Int("videos", 2, "number of labelled videos in the sample")
		target  = flag.Float64("target", 0.95, "target recall for K calibration")
	)
	flag.Parse()

	profile, ok := dataset.Profiles(*seed)[*dsName]
	if !ok {
		fmt.Fprintf(os.Stderr, "calibrate: unknown dataset %q\n", *dsName)
		os.Exit(2)
	}
	if *nVideos > 0 && profile.NumVideos > *nVideos {
		profile.NumVideos = *nVideos
	}
	ds, err := profile.Generate()
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}

	model := reid.NewModel(*seed^0x5EED, dataset.AppearanceDim)
	oracle := reid.NewOracle(model, device.NewCPU(device.DefaultCPU))
	tr := track.Tracktor()

	// Build the labelled windows under the profile's own windowing.
	var windows []core.LabelledWindow
	var pairSizes []int
	var tracked []*video.TrackSet
	for _, v := range ds.Videos {
		ts := tr.Track(v.Detections)
		tracked = append(tracked, ts)
		var prev []*video.Track
		push := func(ps *video.PairSet) {
			windows = append(windows, core.LabelledWindow{
				Pairs: ps,
				Truth: motmetrics.PolyonymousPairs(ps),
			})
			pairSizes = append(pairSizes, ps.Len())
		}
		if ds.WindowLen <= 0 {
			w := video.Window{Start: 0, End: video.FrameIndex(v.NumFrames - 1)}
			push(video.BuildPairSet(w, ts.Sorted(), nil))
			continue
		}
		for _, w := range video.Partition(v.NumFrames, ds.WindowLen) {
			cur := video.WindowTracks(ts, w)
			push(video.BuildPairSet(w, cur, prev))
			prev = cur
		}
	}

	// 1. K for the target recall (§III).
	cal, err := core.CalibrateK(windows, oracle, *target, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
	fmt.Printf("sample: %d videos, %d windows, pair universes %v\n",
		len(ds.Videos), len(windows), pairSizes)
	fmt.Printf("\nK calibration (target REC >= %.2f):\n", *target)
	for _, p := range cal.Curve {
		marker := " "
		if p.K == cal.K {
			marker = "<- recommended"
		}
		fmt.Printf("  K=%.3f  REC=%.3f %s\n", p.K, p.REC, marker)
	}

	// 2. (L, thr_S) grid search (§V-F) on the first labelled video.
	if ds.WindowLen > 0 && len(tracked) > 0 {
		grid, err := core.GridSearch(tracked[0], ds.Videos[0].NumFrames, oracle, core.GridSearchConfig{
			Ls:    []int{ds.WindowLen, ds.WindowLen * 2},
			ThrSs: []float64{100, 200, 300},
			K:     cal.K,
			Base:  core.DefaultTMergeConfig(*seed),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "calibrate:", err)
			os.Exit(1)
		}
		fmt.Printf("\n(L, thr_S) grid search:\n")
		for _, p := range grid.Grid {
			marker := " "
			if p == grid.Best {
				marker = "<- recommended"
			}
			fmt.Printf("  L=%-5d thr_S=%-4g REC=%.3f %s\n", p.L, p.ThrS, p.REC, marker)
		}
	}

	// 3. τmax sized to the observed universes.
	maxTau := 0
	for _, lw := range windows {
		if tau := core.SuggestTauMax(lw.Pairs); tau > maxTau {
			maxTau = tau
		}
	}
	fmt.Printf("\nsuggested tau_max: %d (16 samples per pair at the largest window)\n", maxTau)
}
