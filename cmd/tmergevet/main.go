// Command tmergevet runs the project's static-analysis pass over the
// module: determinism (no wall clocks, global randomness, or
// map-iteration-order leaks in replayed code), lock-discipline (no
// device submission while a mutex is held), error-hygiene (no dropped
// errors from checkpoint Seal/Open, write-path Close, or Try*
// functions), api-doc (every exported identifier of the root package is
// documented), goroutine-lifecycle (no fire-and-forget goroutines:
// every go statement needs a provable shutdown tie), context-discipline
// (no context.Background outside main, no time.Sleep or select-less
// channel loops in ctx-taking functions, no deadline-less net.Dial),
// channel-hygiene (unbuffered sends need a select escape arm, close
// only by the owning sender, exactly one close site per channel), and
// http-hygiene (servers/clients carry timeouts, handlers bound request
// bodies).
//
// Usage:
//
//	tmergevet [-json] [-baseline file] [-write-baseline file] [packages]
//
// Packages default to ./... . Findings print one per line as
// "file:line: [check-name] message" (or as JSON objects with -json).
// The exit status is 1 if there are findings, 2 if loading fails, and
// 0 on a clean tree. A finding can be suppressed in place with
// "//tmerge:allow <check-name> <reason>" on or directly above the
// flagged line; the reason is mandatory, and a directive that
// suppresses nothing is itself a finding.
//
// With -baseline, the exit status ratchets against a committed
// VET_baseline.json instead of demanding zero: the run fails only if
// some check's finding count exceeds the baseline's. -write-baseline
// regenerates the file from the current tree.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/tmerge/tmerge/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as line-delimited JSON")
	baseline := flag.String("baseline", "", "ratchet against this baseline file: fail only if a per-check count rises above it")
	writeBaseline := flag.String("write-baseline", "", "write the current per-check finding counts to this file and exit")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmergevet:", err)
		os.Exit(2)
	}

	findings := analysis.Run(pkgs)

	if *writeBaseline != "" {
		if err := writeBaselineFile(*writeBaseline, findings); err != nil {
			fmt.Fprintln(os.Stderr, "tmergevet:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "tmergevet: wrote baseline (%d findings) to %s\n", len(findings), *writeBaseline)
		return
	}

	if *jsonOut {
		err = analysis.WriteJSON(os.Stdout, findings)
	} else {
		err = analysis.WriteText(os.Stdout, findings)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmergevet:", err)
		os.Exit(2)
	}

	if *baseline != "" {
		regressions, err := compareBaselineFile(*baseline, findings)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tmergevet:", err)
			os.Exit(2)
		}
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "tmergevet: ratchet:", r)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tmergevet: %d finding(s), within baseline %s\n", len(findings), *baseline)
		return
	}

	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "tmergevet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// writeBaselineFile summarises findings and writes them as a baseline.
func writeBaselineFile(path string, findings []analysis.Finding) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return analysis.WriteBaseline(f, analysis.BaselineOf(findings))
}

// compareBaselineFile loads a baseline and ratchets the findings against
// it, returning one line per regressed check.
func compareBaselineFile(path string, findings []analysis.Finding) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	base, err := analysis.ReadBaseline(f)
	if err != nil {
		return nil, err
	}
	return analysis.CompareBaseline(base, analysis.BaselineOf(findings)), nil
}
