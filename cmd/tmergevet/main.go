// Command tmergevet runs the project's static-analysis pass over the
// module: determinism (no wall clocks, global randomness, or
// map-iteration-order leaks in replayed code), lock-discipline (no
// device submission while a mutex is held), error-hygiene (no dropped
// errors from checkpoint Seal/Open, write-path Close, or Try*
// functions), and api-doc (every exported identifier of the root
// package is documented).
//
// Usage:
//
//	tmergevet [-json] [packages]
//
// Packages default to ./... . Findings print one per line as
// "file:line: [check-name] message" (or as JSON objects with -json).
// The exit status is 1 if there are findings, 2 if loading fails, and
// 0 on a clean tree. A finding can be suppressed in place with
// "//tmerge:allow <check-name> <reason>" on or directly above the
// flagged line; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/tmerge/tmerge/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as line-delimited JSON")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmergevet:", err)
		os.Exit(2)
	}

	findings := analysis.Run(pkgs)
	if *jsonOut {
		err = analysis.WriteJSON(os.Stdout, findings)
	} else {
		err = analysis.WriteText(os.Stdout, findings)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmergevet:", err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "tmergevet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
