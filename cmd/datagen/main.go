// Command datagen generates a synthetic dataset from one of the three
// profiles and writes it to disk as gzip-compressed JSON, so experiments
// can be re-run against a frozen corpus.
//
// Usage:
//
//	datagen -dataset pathtrack -seed 42 -videos 5 -out pathtrack.json.gz
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/tmerge/tmerge/internal/dataset"
)

func main() {
	var (
		dsName  = flag.String("dataset", "mot17", "dataset profile: mot17, kitti, pathtrack, highway")
		seed    = flag.Uint64("seed", 42, "generation seed")
		nVideos = flag.Int("videos", 0, "number of videos (0 = profile default)")
		out     = flag.String("out", "", "output path (default <dataset>.json.gz)")
	)
	flag.Parse()

	profile, ok := dataset.Profiles(*seed)[*dsName]
	if !ok {
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *dsName)
		os.Exit(2)
	}
	if *nVideos > 0 {
		profile.NumVideos = *nVideos
	}
	path := *out
	if path == "" {
		path = *dsName + ".json.gz"
	}

	ds, err := profile.Generate()
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if err := dataset.Save(ds, path); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	boxes := 0
	for _, v := range ds.Videos {
		for _, dets := range v.Detections {
			boxes += len(dets)
		}
	}
	fmt.Printf("wrote %s: %d videos, %d detections\n", path, len(ds.Videos), boxes)
}
