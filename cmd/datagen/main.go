// Command datagen generates a synthetic dataset from one of the three
// profiles and writes it to disk as gzip-compressed JSON, so experiments
// can be re-run against a frozen corpus.
//
// Usage:
//
//	datagen -dataset pathtrack -seed 42 -videos 5 -out pathtrack.json.gz
//	datagen -dataset longhorizon -frames 40000 -tracks 10000 -out long.json.gz
//	datagen -streams 10 -seed 1234 -frames 320 -out fleet.json.gz
//
// In profile mode, -frames and -tracks rescale the scene to a target
// horizon: -frames sets the video length and -tracks the expected
// ground-truth track count (dataset.Profile.ScaleHorizon). The
// longhorizon profile is built for this — short object lifetimes and
// steady arrivals, so track count scales linearly with length while
// the live population stays flat — which is how history-subsystem
// workloads (up to 10⁶ tracks) are generated deterministically.
//
// With -streams N the profile flags are ignored: the output is the
// multi-stream serving fleet — one video per camera stream, stream i
// generated at loadgen.StreamSeed(seed, i) from the shared loadgen
// template. The same (seed, streams, frames) triple reproduces the
// exact fixtures servebench, the chaos test, and the tmerged soak run
// in-process, so a failure there can be replayed from disk.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/tmerge/tmerge/internal/dataset"
	"github.com/tmerge/tmerge/internal/serve/loadgen"
)

func main() {
	var (
		dsName   = flag.String("dataset", "mot17", "dataset profile: mot17, kitti, pathtrack, highway, longhorizon")
		seed     = flag.Uint64("seed", 42, "generation seed")
		nVideos  = flag.Int("videos", 0, "number of videos (0 = profile default)")
		out      = flag.String("out", "", "output path (default <dataset>.json.gz)")
		nStreams = flag.Int("streams", 0, "generate a multi-stream serving fleet of N camera streams instead of a dataset profile")
		nFrames  = flag.Int("frames", 0, "frames per video (profile mode: rescales the scene length; -streams mode: frames per stream; 0 = default)")
		nTracks  = flag.Int("tracks", 0, "expected ground-truth tracks per video in profile mode (rescales the arrival rate; 0 = profile default)")
	)
	flag.Parse()

	if *nStreams > 0 {
		os.Exit(runStreams(*seed, *nStreams, *nFrames, *out))
	}

	profile, ok := dataset.Profiles(*seed)[*dsName]
	if !ok {
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *dsName)
		os.Exit(2)
	}
	if *nVideos > 0 {
		profile.NumVideos = *nVideos
	}
	if *nFrames > 0 || *nTracks > 0 {
		if err := profile.ScaleHorizon(*nFrames, *nTracks); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(2)
		}
	}
	path := *out
	if path == "" {
		path = *dsName + ".json.gz"
	}

	ds, err := profile.Generate()
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if err := dataset.Save(ds, path); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	boxes, tracks := 0, 0
	for _, v := range ds.Videos {
		for _, dets := range v.Detections {
			boxes += len(dets)
		}
		tracks += v.GT.Len()
	}
	fmt.Printf("wrote %s: %d videos, %d GT tracks, %d detections\n", path, len(ds.Videos), tracks, boxes)
}

// runStreams materialises the loadgen fleet and saves it as a dataset
// with one video per stream, named after the stream IDs.
func runStreams(seed uint64, streams, frames int, out string) int {
	fleet, err := loadgen.Generate(loadgen.Config{Seed: seed, Streams: streams, Frames: frames})
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		return 1
	}
	ds := &dataset.Dataset{
		Name: fmt.Sprintf("fleet-%d-seed%d", streams, seed),
		// Half the per-stream video so every stream spans several
		// half-overlapping windows, matching the serving defaults.
		WindowLen: fleet[0].Video.NumFrames / 2,
	}
	for _, s := range fleet {
		ds.Videos = append(ds.Videos, s.Video)
	}
	path := out
	if path == "" {
		path = ds.Name + ".json.gz"
	}
	if err := dataset.Save(ds, path); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		return 1
	}
	boxes := 0
	for _, v := range ds.Videos {
		for _, dets := range v.Detections {
			boxes += len(dets)
		}
	}
	fmt.Printf("wrote %s: %d streams × %d frames, %d detections\n", path, len(ds.Videos), fleet[0].Video.NumFrames, boxes)
	return 0
}
