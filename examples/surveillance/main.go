// Surveillance: the paper's motivating Count query ("find objects that
// stay in view for at least N frames — congestion, loitering") over a
// custom congested-intersection scene, showing how track fragmentation
// silently destroys query recall and how TMerge restores it.
package main

import (
	"fmt"

	"github.com/tmerge/tmerge"
)

func main() {
	// A slow, crowded intersection: many large objects, frequent mutual
	// occlusion, and long glare events (low sun) — the worst case for
	// track continuity.
	scene := tmerge.SceneConfig{
		Seed:                9,
		Name:                "intersection",
		NumFrames:           1200,
		Width:               1920,
		Height:              1080,
		ArrivalRate:         0.04,
		MaxObjects:          14,
		MinSpan:             200,
		MaxSpan:             600,
		SpeedMin:            0.4,
		SpeedMax:            1.8,
		SizeMin:             100,
		SizeMax:             220,
		PosJitter:           0.8,
		AppearanceDim:       tmerge.AppearanceDim,
		AppearanceNoise:     0.08,
		PosAppearanceWeight: 0.5,
		OcclusionCoverage:   0.40,
		MissProb:            0.02,
		GlareRate:           0.012,
		GlareDuration:       50,
		GlareSize:           360,
	}
	v, err := tmerge.GenerateScene(scene)
	if err != nil {
		panic(err)
	}

	tracks := tmerge.Tracktor().Track(v.Detections)
	q := tmerge.CountQuery{MinFrames: 300}
	fmt.Printf("scene: %d objects, %d qualify for Count(>=%d frames)\n",
		v.GT.Len(), q.Count(v.GT), q.MinFrames)
	fmt.Printf("raw tracker: %d tracks, query recall %.3f (answer size %d)\n",
		tracks.Len(), q.Recall(v.GT, tracks), q.Count(tracks))

	// Ingest with TMerge; candidates pass a verification step before
	// their identities are merged (the paper's inspection workflow).
	oracle := tmerge.NewOracle(
		tmerge.NewModel(7, tmerge.AppearanceDim),
		tmerge.NewCPU(tmerge.DefaultCPUCost))
	res := tmerge.RunPipeline(tracks, v.NumFrames, oracle, tmerge.PipelineConfig{
		K:         0.05,
		Algorithm: tmerge.NewTMerge(tmerge.DefaultTMergeConfig(3)),
		Verify:    true,
	})
	fmt.Printf("after TMerge: %d tracks, query recall %.3f (answer size %d)\n",
		res.Merged.Len(), q.Recall(v.GT, res.Merged), q.Count(res.Merged))

	// Identity metrics tell the same story.
	before := tmerge.Identity(v.GT, tracks)
	after := tmerge.Identity(v.GT, res.Merged)
	fmt.Printf("IDF1 %.3f -> %.3f, IDP %.3f -> %.3f, IDR %.3f -> %.3f\n",
		before.IDF1, after.IDF1, before.IDP, after.IDP, before.IDR, after.IDR)
}
