// Videodb: the downstream side of the paper's story — a track-metadata
// database answering declarative temporal queries, before and after the
// identities are repaired by TMerge. Demonstrates the TrackStore
// (interval-indexed storage with in-place identity merging) together with
// the full query surface: Count, Co-occurrence, Region dwell, and
// sequenced appearance (Precedes).
package main

import (
	"fmt"

	"github.com/tmerge/tmerge"
)

func main() {
	profile := tmerge.MOT17Like(64)
	profile.NumVideos = 1
	ds, err := profile.Generate()
	if err != nil {
		panic(err)
	}
	v := ds.Videos[0]
	tracks := tmerge.Tracktor().Track(v.Detections)

	// Load the raw tracker output into the metadata store.
	store := tmerge.TrackStoreFrom(tracks)
	st := store.Stats()
	fmt.Printf("store: %d tracks, %d boxes, frames [%d, %d]\n",
		st.Tracks, st.Boxes, st.FirstFrame, st.LastFrame)

	// Time-range scan (the access pattern of windowed processing).
	mid := tmerge.FrameIndex(v.NumFrames / 2)
	fmt.Printf("tracks overlapping the middle 100 frames: %d\n",
		len(store.TracksInRange(mid-50, mid+50)))

	// Queries against the raw (fragmented) metadata.
	countQ := tmerge.CountQuery{MinFrames: 250}
	regionQ := tmerge.RegionQuery{
		Region:    tmerge.Rect{X: 0, Y: 0, W: 960, H: 1080}, // left half
		MinFrames: 150,
	}
	precedesQ := tmerge.PrecedesQuery{MinGap: 100, MinOverlap: 60}
	coQ := tmerge.CoOccurQuery{GroupSize: 3, MinFrames: 60}

	report := func(label string, ts *tmerge.TrackSet) {
		fmt.Printf("%s:\n", label)
		fmt.Printf("  Count(>=250f):            answer %3d, recall %.3f\n",
			len(countQ.Answer(ts)), countQ.Recall(v.GT, ts))
		fmt.Printf("  Region(left half >=150f): answer %3d, recall %.3f\n",
			len(regionQ.Answer(ts)), regionQ.Recall(v.GT, ts))
		fmt.Printf("  Precedes(gap>=100f):      answer %3d, recall %.3f\n",
			len(precedesQ.Answer(ts)), precedesQ.Recall(v.GT, ts))
		fmt.Printf("  CoOccur(3 objs >=60f):    answer %3d, recall %.3f\n",
			len(coQ.Answer(ts)), coQ.Recall(v.GT, ts))
	}
	report("before merging", store.TrackSet())

	// Identify polyonymous pairs with TMerge and repair the store.
	oracle := tmerge.NewOracle(
		tmerge.NewModel(7, tmerge.AppearanceDim),
		tmerge.NewCPU(tmerge.DefaultCPUCost))
	w := tmerge.Window{Start: 0, End: tmerge.FrameIndex(v.NumFrames - 1)}
	ps := tmerge.BuildPairSet(w, tracks.Sorted(), nil)
	truth := tmerge.PolyonymousPairs(ps)
	selected := tmerge.NewTMerge(tmerge.DefaultTMergeConfig(3)).Select(ps, oracle, 0.05)

	merger := tmerge.NewMerger()
	for _, key := range selected {
		if truth[key] { // inspection step
			merger.Merge(key)
		}
	}
	removed := store.ApplyMerge(merger)
	fmt.Printf("TMerge merged %d fragmented identities (%d ReID distances)\n",
		removed, oracle.Stats().Distances)

	report("after merging", store.TrackSet())
}
