// Co-occurrence: the paper's second query workload — find groups of
// objects that appear jointly for a sustained period (§V-H, e.g. "the
// same two persons and one vehicle appear together"). The example also
// compares selection algorithms head-to-head on the same window at a
// fixed candidate budget.
package main

import (
	"fmt"

	"github.com/tmerge/tmerge"
)

func main() {
	profile := tmerge.KITTILike(23)
	profile.NumVideos = 1
	ds, err := profile.Generate()
	if err != nil {
		panic(err)
	}
	v := ds.Videos[0]
	tracks := tmerge.Tracktor().Track(v.Detections)

	q := tmerge.CoOccurQuery{GroupSize: 2, MinFrames: 100}
	fmt.Printf("scene: %d objects, %d GT co-occurring pairs\n",
		v.GT.Len(), len(q.Answer(v.GT)))
	fmt.Printf("raw tracker: recall %.3f\n", q.Recall(v.GT, tracks))

	// Build the single whole-video pair universe and let each algorithm
	// pick its candidates under the same K.
	w := tmerge.Window{Start: 0, End: tmerge.FrameIndex(v.NumFrames - 1)}
	ps := tmerge.BuildPairSet(w, tracks.Sorted(), nil)
	truth := tmerge.PolyonymousPairs(ps)
	fmt.Printf("pair universe: %d pairs, %d truly polyonymous\n", ps.Len(), len(truth))

	model := tmerge.NewModel(7, tmerge.AppearanceDim)
	algos := []tmerge.Algorithm{
		tmerge.NewBaseline(),
		tmerge.NewPS(0.02, 5),
		tmerge.NewLCB(10000, 5),
		tmerge.NewTMerge(tmerge.DefaultTMergeConfig(5)),
	}
	const K = 0.05
	for _, algo := range algos {
		oracle := tmerge.NewOracle(model, tmerge.NewCPU(tmerge.DefaultCPUCost))
		selected := algo.Select(ps, oracle, K)
		st := oracle.Stats()
		fmt.Printf("%-8s recall %.3f  distances %9d  extractions %6d\n",
			algo.Name(), tmerge.Recall(selected, truth), st.Distances, st.Extractions)
	}

	// Merge TMerge's verified candidates and re-run the query.
	oracle := tmerge.NewOracle(model, tmerge.NewCPU(tmerge.DefaultCPUCost))
	selected := tmerge.NewTMerge(tmerge.DefaultTMergeConfig(5)).Select(ps, oracle, K)
	merger := tmerge.NewMerger()
	for _, key := range selected {
		if truth[key] { // inspection step
			merger.Merge(key)
		}
	}
	merged := merger.Apply(tracks)
	fmt.Printf("after TMerge: recall %.3f (%d -> %d tracks)\n",
		q.Recall(v.GT, merged), tracks.Len(), merged.Len())

	// Class-constrained co-occurrence — the paper's §V-H example is "the
	// same two persons and one vehicle appear jointly". Generate a mixed
	// scene (class 0 = person, class 1 = vehicle) and ask for exactly
	// that pattern.
	mixed := tmerge.MOT17Like(77).Template
	mixed.Name = "mixed"
	mixed.NumClasses = 2
	mv, err := tmerge.GenerateScene(mixed)
	if err != nil {
		panic(err)
	}
	mTracks := tmerge.Tracktor().Track(mv.Detections)
	pattern := tmerge.CoOccurQuery{
		GroupSize: 3,
		MinFrames: 80,
		Classes:   []tmerge.ClassID{0, 0, 1}, // two persons + one vehicle
	}
	fmt.Printf("\nclass-constrained (2 persons + 1 vehicle, >=80 frames): %d GT groups, tracker answers %d, recall %.3f\n",
		len(pattern.Answer(mv.GT)), len(pattern.Answer(mTracks)), pattern.Recall(mv.GT, mTracks))
}
