// Streamwindows: true streaming ingestion of a long (PathTrack-style)
// sequence with the Ingestor API — detections are pushed one frame at a
// time, the online tracker runs incrementally, each half-overlapping
// window (§II of the paper) is selected and merged the moment the stream
// passes it, and the merged track metadata is available mid-stream. This
// is the loop a live video-analytics system runs during metadata
// extraction.
package main

import (
	"fmt"

	"github.com/tmerge/tmerge"
)

func main() {
	profile := tmerge.PathTrackLike(33)
	profile.NumVideos = 1
	ds, err := profile.Generate()
	if err != nil {
		panic(err)
	}
	v := ds.Videos[0]
	fmt.Printf("stream %q: %d frames, %d ground-truth objects\n",
		v.Name, v.NumFrames, v.GT.Len())

	oracle := tmerge.NewOracle(
		tmerge.NewModel(7, tmerge.AppearanceDim),
		tmerge.NewCPU(tmerge.DefaultCPUCost))

	// The inspection callback stands in for the paper's human review of
	// candidates; here it consults the simulator's ground truth.
	inspect := func(p *tmerge.Pair) bool {
		oi, pi := p.TI.MajorityObject()
		oj, pj := p.TJ.MajorityObject()
		return pi >= 0.5 && pj >= 0.5 && oi >= 0 && oi == oj
	}

	in, err := tmerge.NewIngestor(tmerge.Tracktor(), oracle, tmerge.IngestConfig{
		WindowLen: 2000, // >= 2*Lmax for this profile
		K:         0.05,
		Algorithm: tmerge.NewTMerge(tmerge.DefaultTMergeConfig(7)),
		Inspect:   inspect,
	})
	if err != nil {
		panic(err)
	}

	for f, dets := range v.Detections {
		for _, res := range in.Push(dets) {
			fmt.Printf("frame %5d: window %d [%5d..%5d] closed — %4d pairs, %3d candidates, %2d merged\n",
				f, res.Window.Index, res.Window.Start, res.Window.End,
				res.Pairs, len(res.Selected), len(res.Merged))
		}
		if f == v.NumFrames/2 {
			mid := in.MergedTracks()
			fmt.Printf("frame %5d: mid-stream state has %d merged tracks\n", f, mid.Len())
		}
	}
	for _, res := range in.Close() {
		fmt.Printf("flush:       window %d [%5d..%5d] closed — %4d pairs, %3d candidates, %2d merged\n",
			res.Window.Index, res.Window.Start, res.Window.End,
			res.Pairs, len(res.Selected), len(res.Merged))
	}

	merged := in.MergedTracks()
	raw := tmerge.Tracktor().Track(v.Detections)
	before := tmerge.Identity(v.GT, raw)
	after := tmerge.Identity(v.GT, merged)
	st := oracle.Stats()
	fmt.Printf("stream done: %d raw tracks -> %d merged tracks\n", raw.Len(), merged.Len())
	fmt.Printf("oracle: %d distances, %d extractions, %d cache hits (cache persists across windows)\n",
		st.Distances, st.Extractions, st.CacheHits)
	fmt.Printf("IDF1 %.3f -> %.3f\n", before.IDF1, after.IDF1)
}
