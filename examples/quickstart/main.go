// Quickstart: generate a scene, track it, identify and merge polyonymous
// tracks with TMerge, and report the recall and the oracle work saved
// relative to the exhaustive baseline.
package main

import (
	"fmt"

	"github.com/tmerge/tmerge"
)

func main() {
	// 1. A synthetic MOT-17-style scene with exact ground truth.
	profile := tmerge.MOT17Like(42)
	profile.NumVideos = 1
	ds, err := profile.Generate()
	if err != nil {
		panic(err)
	}
	v := ds.Videos[0]
	fmt.Printf("scene %q: %d frames, %d ground-truth objects\n",
		v.Name, v.NumFrames, v.GT.Len())

	// 2. Track it. Occlusion and glare fragment some trajectories, so the
	// tracker reports more tracks than there are objects.
	tracks := tmerge.Tracktor().Track(v.Detections)
	fmt.Printf("tracker: %d tracks (%d fragmented identities)\n",
		tracks.Len(), tracks.Len()-v.GT.Len())

	// 3. Identify-and-merge with TMerge, the paper's default config.
	model := tmerge.NewModel(7, tmerge.AppearanceDim)
	oracle := tmerge.NewOracle(model, tmerge.NewCPU(tmerge.DefaultCPUCost))
	res := tmerge.RunPipeline(tracks, v.NumFrames, oracle, tmerge.PipelineConfig{
		K:         0.05,
		Algorithm: tmerge.NewTMerge(tmerge.DefaultTMergeConfig(1)),
		// Candidates pass an inspection step before merging — the paper's
		// workflow; without it the ~95% of candidates that are not truly
		// polyonymous would chain unrelated tracks together.
		Verify: true,
	})
	fmt.Printf("TMerge: recall %.3f with %d ReID distances (%d extractions, %d cache hits)\n",
		res.REC, res.Stats.Distances, res.Stats.Extractions, res.Stats.CacheHits)
	fmt.Printf("merged: %d tracks\n", res.Merged.Len())

	// 4. Compare against the exhaustive baseline's cost.
	blOracle := tmerge.NewOracle(model, tmerge.NewCPU(tmerge.DefaultCPUCost))
	bl := tmerge.RunPipeline(tracks, v.NumFrames, blOracle, tmerge.PipelineConfig{
		K:         0.05,
		Algorithm: tmerge.NewBaseline(),
	})
	fmt.Printf("baseline: recall %.3f with %d ReID distances\n", bl.REC, bl.Stats.Distances)
	fmt.Printf("TMerge evaluated %.2f%% of the baseline's distances (%.0fx throughput)\n",
		100*float64(res.Stats.Distances)/float64(bl.Stats.Distances),
		res.FPS()/bl.FPS())
}
