// Package tmerge is a Go implementation of TMerge — "Track Merging for
// Effective Video Query Processing" (Chao, Chen, Koudas, Yu — ICDE 2023).
//
// Object trackers fragment a single physical object's trajectory into
// several shorter tracks ("polyonymous tracks") under occlusion and
// glare, which silently breaks downstream video queries that key on track
// identity. TMerge is a Thompson-sampling multi-armed bandit that, per
// ingestion window, identifies the track pairs most likely to be
// fragments of the same object while invoking the expensive ReID distance
// oracle as few times as possible; confirmed pairs are then merged under
// one identity.
//
// The package re-exports the library's public surface:
//
//   - selection algorithms: NewTMerge (the contribution), NewBaseline,
//     NewPS, NewLCB, and their batched variants;
//   - the ingestion pipeline RunPipeline (window partitioning per §II of
//     the paper, candidate selection, identity rewriting);
//   - the ReID oracle (NewModel, NewOracle) and compute devices (NewCPU,
//     NewAccelerator) it runs on;
//   - the tracking substrate (SORT, DeepSORT, Tracktor) and the scene
//     simulator / dataset profiles used for evaluation;
//   - evaluation: identity metrics, polyonymous-pair derivation, and the
//     Count / Co-occurrence query engine of the paper's §V-H.
//
// Quickstart:
//
//	profile := tmerge.MOT17Like(42)
//	profile.NumVideos = 1
//	ds, _ := profile.Generate()
//	v := ds.Videos[0]
//
//	tracks := tmerge.Tracktor().Track(v.Detections)
//	oracle := tmerge.NewOracle(tmerge.NewModel(7, tmerge.AppearanceDim),
//		tmerge.NewCPU(tmerge.DefaultCPUCost))
//	res := tmerge.RunPipeline(tracks, v.NumFrames, oracle, tmerge.PipelineConfig{
//		K:         0.05,
//		Algorithm: tmerge.NewTMerge(tmerge.DefaultTMergeConfig(1)),
//	})
//	fmt.Println(res.REC, res.Merged.Len())
//
// See DESIGN.md for the substitutions that replace the paper's CV stack
// (real video, deep trackers, OSNet, GPU) with synthetic substrates, and
// EXPERIMENTS.md for the per-figure reproduction record.
package tmerge

import (
	"io"

	"github.com/tmerge/tmerge/internal/checkpoint"
	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/dataset"
	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/fault"
	"github.com/tmerge/tmerge/internal/geom"
	"github.com/tmerge/tmerge/internal/ingest"
	"github.com/tmerge/tmerge/internal/ingress"
	"github.com/tmerge/tmerge/internal/motmetrics"
	"github.com/tmerge/tmerge/internal/query"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/serve"
	"github.com/tmerge/tmerge/internal/synth"
	"github.com/tmerge/tmerge/internal/track"
	"github.com/tmerge/tmerge/internal/trackdb"
	"github.com/tmerge/tmerge/internal/video"
)

// Core data model.
type (
	// BBox is one detection of one object in one frame.
	BBox = video.BBox
	// BBoxID uniquely identifies a bounding box (feature-cache key).
	BBoxID = video.BBoxID
	// FrameIndex identifies a frame within a video.
	FrameIndex = video.FrameIndex
	// ObjectID is a ground-truth object identity (evaluation only).
	ObjectID = video.ObjectID
	// ClassID is a detected object class (0 in single-class settings).
	ClassID = video.ClassID
	// TrackID is a tracker-assigned track identifier.
	TrackID = video.TrackID
	// Track is a sequence of BBoxes under one tracker-assigned ID.
	Track = video.Track
	// TrackSet is a collection of tracks indexed by ID.
	TrackSet = video.TrackSet
	// Window is one half-overlapping ingestion window.
	Window = video.Window
	// PairKey identifies an unordered track pair.
	PairKey = video.PairKey
	// Pair is one candidate track pair with its gap features.
	Pair = video.Pair
	// PairSet is the candidate pair universe Pc of one window.
	PairSet = video.PairSet
	// Rect is an axis-aligned bounding rectangle.
	Rect = geom.Rect
	// Point is a 2-D point in frame coordinates.
	Point = geom.Point
)

// NewTrackSet builds a TrackSet from tracks (IDs must be unique).
func NewTrackSet(tracks []*Track) *TrackSet { return video.NewTrackSet(tracks) }

// MakePairKey returns the canonical key for the unordered pair {a, b}.
func MakePairKey(a, b TrackID) PairKey { return video.MakePairKey(a, b) }

// BuildPairSet constructs Pc per Equation (1) of the paper.
func BuildPairSet(w Window, cur, prev []*Track) *PairSet { return video.BuildPairSet(w, cur, prev) }

// Partition splits a video into half-overlapping windows of length L.
func Partition(numFrames, L int) []Window { return video.Partition(numFrames, L) }

// Recall computes REC (Equation 3) of a selection against a truth set.
func Recall(selected []PairKey, truth map[PairKey]bool) float64 {
	return video.Recall(selected, truth)
}

// Selection algorithms.
type (
	// Algorithm selects the top-⌈K·|Pc|⌉ polyonymous pair candidates.
	Algorithm = core.Algorithm
	// TMerge is the paper's Thompson-sampling algorithm (Algorithm 2).
	TMerge = core.TMerge
	// TMergeConfig parameterises TMerge.
	TMergeConfig = core.TMergeConfig
	// TMergeDiagnostics reports what happened inside a Select call.
	TMergeDiagnostics = core.TMergeDiagnostics
	// Baseline is the exhaustive Algorithm 1.
	Baseline = core.Baseline
	// PS is the stratified proportional-sampling baseline.
	PS = core.PS
	// LCB is the lower-confidence-bound bandit baseline.
	LCB = core.LCB
	// Merger rewrites track identities from confirmed pairs (union-find).
	Merger = core.Merger
	// PipelineConfig configures one ingestion pass.
	PipelineConfig = core.PipelineConfig
	// PipelineResult is the outcome of an ingestion pass.
	PipelineResult = core.PipelineResult
	// WindowReport describes the processing of one window.
	WindowReport = core.WindowReport
)

// DefaultTMergeConfig returns the paper's default TMerge configuration
// (τmax = 10,000, thr_S = 200, BetaInit and ULB enabled).
func DefaultTMergeConfig(seed uint64) TMergeConfig { return core.DefaultTMergeConfig(seed) }

// NewTMerge returns a TMerge instance.
func NewTMerge(cfg TMergeConfig) *TMerge { return core.NewTMerge(cfg) }

// NewBaseline returns the exhaustive baseline (BL).
func NewBaseline() *Baseline { return core.NewBaseline() }

// NewBaselineB returns the batched baseline (BL-B).
func NewBaselineB(batch int) *Baseline { return core.NewBaselineB(batch) }

// NewPS returns proportional sampling with proportion eta.
func NewPS(eta float64, seed uint64) *PS { return core.NewPS(eta, seed) }

// NewPSB returns batched proportional sampling (PS-B).
func NewPSB(eta float64, batch int, seed uint64) *PS { return core.NewPSB(eta, batch, seed) }

// NewLCB returns the lower-confidence-bound bandit.
func NewLCB(tauMax int, seed uint64) *LCB { return core.NewLCB(tauMax, seed) }

// NewLCBB returns LCB-B (accelerator execution; cannot batch across
// iterations).
func NewLCBB(tauMax int, seed uint64) *LCB { return core.NewLCBB(tauMax, seed) }

// NewMerger returns an empty identity merger.
func NewMerger() *Merger { return core.NewMerger() }

// RunPipeline executes the identify-and-merge ingestion pass of §II.
func RunPipeline(tracks *TrackSet, numFrames int, oracle *Oracle, cfg PipelineConfig) *PipelineResult {
	return core.RunPipeline(tracks, numFrames, oracle, cfg)
}

// ReID oracle and devices.
type (
	// Model is the simulated ReID embedder.
	Model = reid.Model
	// Oracle computes normalised BBox pair distances with caching and
	// cost accounting.
	Oracle = reid.Oracle
	// OracleStats counts the oracle's work.
	OracleStats = reid.Stats
	// Device executes ReID submissions and charges their modeled cost.
	Device = device.Device
	// CostModel is the virtual cost charged per submission.
	CostModel = device.CostModel
)

// Default cost models (see internal/device for calibration notes).
var (
	// DefaultCPUCost is the serial CPU cost model.
	DefaultCPUCost = device.DefaultCPU
	// DefaultAcceleratorCost is the batch accelerator cost model.
	DefaultAcceleratorCost = device.DefaultAccelerator
)

// NewModel constructs a ReID model with deterministic weights.
func NewModel(seed uint64, inDim int) *Model { return reid.NewModel(seed, inDim) }

// NewOracle returns a distance oracle executing on dev.
func NewOracle(model *Model, dev Device) *Oracle { return reid.NewOracle(model, dev) }

// NewCPU returns a serial device with the given cost model.
func NewCPU(model CostModel) Device { return device.NewCPU(model) }

// NewAccelerator returns a batch device (workers = 0 means GOMAXPROCS).
func NewAccelerator(model CostModel, workers int) Device {
	return device.NewAccelerator(model, workers)
}

// Tracking substrate.
type (
	// Tracker converts per-frame detections into tracks.
	Tracker = track.Tracker
	// TrackerConfig parameterises the SORT-family engine.
	TrackerConfig = track.Config
	// TrackerEngine is the shared SORT-family implementation.
	TrackerEngine = track.Engine
)

// SORT returns the classic SORT preset (fragments most).
func SORT() *TrackerEngine { return track.SORT() }

// DeepSORT returns the appearance-augmented DeepSORT preset.
func DeepSORT() *TrackerEngine { return track.DeepSORT() }

// Tracktor returns the Tracktor preset (fragments least).
func Tracktor() *TrackerEngine { return track.Tracktor() }

// NewTrackerEngine returns a tracking engine for a custom configuration.
func NewTrackerEngine(cfg TrackerConfig) *TrackerEngine { return track.NewEngine(cfg) }

// Scene simulation and datasets.
type (
	// SceneConfig parameterises a synthetic scene.
	SceneConfig = synth.Config
	// Video is a generated scene: detections plus exact ground truth.
	Video = synth.Video
	// DatasetProfile describes how to generate one synthetic dataset.
	DatasetProfile = dataset.Profile
	// Dataset is a generated collection of videos.
	Dataset = dataset.Dataset
)

// AppearanceDim is the observation dimensionality shared by the dataset
// profiles and the default ReID model.
const AppearanceDim = dataset.AppearanceDim

// GenerateScene runs the simulator for one scene configuration.
func GenerateScene(cfg SceneConfig) (*Video, error) { return synth.Generate(cfg) }

// MOT17Like returns the MOT-17 stand-in dataset profile.
func MOT17Like(seed uint64) DatasetProfile { return dataset.MOT17Like(seed) }

// KITTILike returns the KITTI stand-in dataset profile.
func KITTILike(seed uint64) DatasetProfile { return dataset.KITTILike(seed) }

// PathTrackLike returns the PathTrack stand-in dataset profile.
func PathTrackLike(seed uint64) DatasetProfile { return dataset.PathTrackLike(seed) }

// SaveDataset writes a dataset to disk as gzip-compressed JSON.
func SaveDataset(ds *Dataset, path string) error { return dataset.Save(ds, path) }

// LoadDataset reads a dataset written by SaveDataset.
func LoadDataset(path string) (*Dataset, error) { return dataset.Load(path) }

// Evaluation.
type (
	// IdentityMetrics holds IDF1/IDP/IDR.
	IdentityMetrics = motmetrics.IdentityMetrics
	// CLEARMetrics holds CLEAR-MOT event counts.
	CLEARMetrics = motmetrics.CLEARMetrics
	// CountQuery counts long-dwelling objects (§V-H).
	CountQuery = query.CountQuery
	// CoOccurQuery finds jointly-present object groups (§V-H).
	CoOccurQuery = query.CoOccurQuery
)

// Identity computes IDF1/IDP/IDR between GT and hypothesis tracks.
func Identity(gt, hyp *TrackSet) IdentityMetrics { return motmetrics.Identity(gt, hyp) }

// CLEARMOT computes CLEAR-MOT event counts.
func CLEARMOT(gt, hyp *TrackSet) CLEARMetrics { return motmetrics.CLEAR(gt, hyp) }

// PolyonymousPairs derives the ground-truth polyonymous pair set P*c.
func PolyonymousPairs(ps *PairSet) map[PairKey]bool { return motmetrics.PolyonymousPairs(ps) }

// PolyonymousRate returns |P*c| / |Pc|.
func PolyonymousRate(ps *PairSet) float64 { return motmetrics.PolyonymousRate(ps) }

// Streaming ingestion (package ingest).
type (
	// Ingestor is an online ingestion session: push detections frame by
	// frame; windows are selected and merged as the stream passes them.
	Ingestor = ingest.Ingestor
	// IngestConfig parameterises a streaming session.
	IngestConfig = ingest.Config
	// IngestWindowResult reports one processed window.
	IngestWindowResult = ingest.WindowResult
	// Inspector filters selected candidates before merging (the paper's
	// human-inspection step as a callback).
	Inspector = ingest.Inspector
	// HistoryConfig enables the session's log-structured on-disk history
	// (IngestConfig.History): segmented journal, tiered bounded-memory
	// view, log-referencing checkpoints, and time-travel Ingestor.AsOf
	// (DESIGN.md §16).
	HistoryConfig = ingest.HistoryConfig
)

// NewIngestor returns a streaming ingestion session.
func NewIngestor(engine *TrackerEngine, oracle *Oracle, cfg IngestConfig) (*Ingestor, error) {
	return ingest.New(engine, oracle, cfg)
}

// Track metadata store (package trackdb).
type (
	// TrackStore is a queryable track-metadata database with an interval
	// index and in-place identity merging.
	TrackStore = trackdb.Store
	// TrackStoreStats summarises a store's contents.
	TrackStoreStats = trackdb.Stats
)

// NewTrackStore returns an empty track store.
func NewTrackStore() *TrackStore { return trackdb.New() }

// TrackStoreFrom builds a store holding the given tracks.
func TrackStoreFrom(ts *TrackSet) *TrackStore { return trackdb.FromTrackSet(ts) }

// K calibration (§III).
type (
	// LabelledWindow pairs a window's candidates with its ground truth.
	LabelledWindow = core.LabelledWindow
	// KCalibration is the outcome of CalibrateK.
	KCalibration = core.KCalibration
)

// CalibrateK finds the smallest K achieving the target recall on a
// labelled sample of windows (§III's calibration procedure).
func CalibrateK(windows []LabelledWindow, oracle *Oracle, targetREC float64, grid []float64) (KCalibration, error) {
	return core.CalibrateK(windows, oracle, targetREC, grid)
}

// SuggestTauMax estimates a TMerge iteration budget from the pair
// universe size.
func SuggestTauMax(ps *PairSet) int { return core.SuggestTauMax(ps) }

// Additional temporal queries (package query).
type (
	// RegionQuery finds objects dwelling in a frame region.
	RegionQuery = query.RegionQuery
	// PrecedesQuery finds sequenced-appearance object pairs.
	PrecedesQuery = query.PrecedesQuery
)

// UMA returns the UMA tracker preset.
func UMA() *TrackerEngine { return track.UMA() }

// CenterTrack returns the CenterTrack tracker preset.
func CenterTrack() *TrackerEngine { return track.CenterTrack() }

// Hyper-parameter search (§V-F).
type (
	// GridSearchConfig parameterises the (L, thr_S) grid search.
	GridSearchConfig = core.GridSearchConfig
	// GridSearchResult reports the best point and the full grid.
	GridSearchResult = core.GridSearchResult
)

// GridSearch evaluates (L, thr_S) combinations on a labelled sequence and
// returns the best-recall point, the paper's §V-F calibration procedure.
func GridSearch(tracks *TrackSet, numFrames int, oracle *Oracle, cfg GridSearchConfig) (GridSearchResult, error) {
	return core.GridSearch(tracks, numFrames, oracle, cfg)
}

// SequenceWindow extracts a contiguous run of up to n boxes from a track,
// centred on index around — the sampling primitive for sequence-input
// ReID (the paper's footnote 2 variant; see Oracle.SequenceDistance).
func SequenceWindow(t *Track, around, n int) []BBox { return reid.SequenceWindow(t, around, n) }

// HighwayLike returns a vehicle-surveillance dataset profile (wide scene,
// fast directional motion — the paper's "cars on highways" motivation).
func HighwayLike(seed uint64) DatasetProfile { return dataset.HighwayLike(seed) }

// Pair-universe pre-filtering (extension; see internal/video).
type (
	// PairFilter decides whether a candidate pair enters the universe.
	PairFilter = video.PairFilter
)

// TemporalOverlapFilter rejects pairs whose tracks coexist for more than
// maxOverlap frames (one object cannot appear twice in a frame).
func TemporalOverlapFilter(maxOverlap int) PairFilter {
	return video.TemporalOverlapFilter(maxOverlap)
}

// BuildPairSetFiltered is BuildPairSet with a pre-filter.
func BuildPairSetFiltered(w Window, cur, prev []*Track, keep PairFilter) *PairSet {
	return video.BuildPairSetFiltered(w, cur, prev, keep)
}

// Fault tolerance (packages device and fault). Real ReID backends fail —
// transient errors, latency spikes, outages — and the paper's cost model
// assumes they don't. This layer lets a deployment (and the test suite)
// run the pipeline over an unreliable device without stalling or dropping
// windows: retries with backoff mask transient faults, a circuit breaker
// stops hammering a dead backend, and windows that still cannot reach the
// oracle degrade to the BetaInit spatial prior instead of failing.
type (
	// FallibleDevice is a Device whose submissions can fail (TrySubmit).
	FallibleDevice = device.Fallible
	// ResilientDevice wraps a fallible device with retry, exponential
	// backoff with jitter, and a circuit breaker.
	ResilientDevice = device.ResilientDevice
	// RetryPolicy bounds the per-submission retry loop.
	RetryPolicy = device.RetryPolicy
	// BreakerConfig parameterises the circuit breaker.
	BreakerConfig = device.BreakerConfig
	// BreakerState is the breaker's closed / open / half-open state.
	BreakerState = device.BreakerState
	// ResilientCounters counts retries, failures, trips, and probes.
	ResilientCounters = device.ResilientCounters
	// Unavailable is the panic payload carried through the infallible
	// Submit path when a submission cannot be completed.
	Unavailable = device.Unavailable
	// FaultConfig parameterises a fault-injecting device wrapper.
	FaultConfig = fault.Config
	// Flaky is a deterministic fault-injecting Device wrapper.
	Flaky = fault.Flaky
	// FaultCounters counts injected faults by kind.
	FaultCounters = fault.Counters
	// FaultSchedule scripts outage windows by submission index.
	FaultSchedule = fault.Schedule
	// Outage is one scripted outage window [From, To).
	Outage = fault.Outage
	// Spatial ranks candidates by the BetaInit spatial prior alone — the
	// degraded-mode fallback, also usable as a zero-cost baseline.
	Spatial = core.Spatial
)

// Breaker states.
const (
	// BreakerClosed admits submissions normally.
	BreakerClosed = device.BreakerClosed
	// BreakerOpen rejects submissions until the cooldown elapses.
	BreakerOpen = device.BreakerOpen
	// BreakerHalfOpen admits a single probe submission whose outcome
	// re-closes or re-opens the breaker.
	BreakerHalfOpen = device.BreakerHalfOpen
)

// Fault sentinels: ErrDeviceUnavailable is wrapped by every ResilientDevice
// failure; the fault package's sentinels classify injected faults.
var (
	// ErrDeviceUnavailable wraps every ResilientDevice failure.
	ErrDeviceUnavailable = device.ErrUnavailable
	// ErrFaultTransient marks an injected transient submission failure.
	ErrFaultTransient = fault.ErrTransient
	// ErrFaultTimeout marks an injected submission deadline overrun.
	ErrFaultTimeout = fault.ErrTimeout
	// ErrFaultOutage marks a submission landing in a scripted outage
	// window (or after a crash without restore).
	ErrFaultOutage = fault.ErrOutage
)

// NewResilientDevice wraps inner with retry + breaker fault handling.
// Zero-valued config fields take documented defaults; seed drives the
// backoff jitter.
func NewResilientDevice(inner Device, retry RetryPolicy, breaker BreakerConfig, seed uint64) *ResilientDevice {
	return device.NewResilientDevice(inner, retry, breaker, seed)
}

// DefaultRetryPolicy returns the default retry policy.
func DefaultRetryPolicy() RetryPolicy { return device.DefaultRetryPolicy() }

// DefaultBreakerConfig returns the default breaker configuration.
func DefaultBreakerConfig() BreakerConfig { return device.DefaultBreakerConfig() }

// NewFlaky wraps inner with deterministic seeded fault injection.
func NewFlaky(inner Device, cfg FaultConfig) *Flaky { return fault.NewFlaky(inner, cfg) }

// NewFaultSchedule builds an outage schedule; outages are half-open
// [From, To) ranges of device submission indices.
func NewFaultSchedule(outages ...Outage) *FaultSchedule { return fault.NewSchedule(outages...) }

// NewSpatial returns the spatial-prior ranker — the zero-cost algorithm
// used for degraded-mode selection, also usable as a baseline.
func NewSpatial() *Spatial { return core.NewSpatial() }

// TryRunPipeline is RunPipeline with configuration validation and
// degraded-mode reporting instead of panics.
func TryRunPipeline(tracks *TrackSet, numFrames int, oracle *Oracle, cfg PipelineConfig) (*PipelineResult, error) {
	return core.TryRunPipeline(tracks, numFrames, oracle, cfg)
}

// Durability (packages checkpoint and ingest). A streaming session can be
// checkpointed between frames — tracker hypotheses, identity map, ReID
// cache and counters, device resilience state, quarantine ledger, and
// cursors — into a versioned, checksummed, self-contained byte slice,
// and later restored into a freshly assembled pipeline. Replay is
// deterministic: a session killed at any frame and restored from its
// last checkpoint produces, after replaying the remaining frames,
// bit-identical window results and merged tracks to one that never
// crashed. Hostile detections (non-finite geometry, mis-indexed frames)
// never reach tracker state; they are quarantined into a capped
// dead-letter buffer with per-reason counters.
type (
	// RejectedDetection is one quarantined input with its reject reason.
	RejectedDetection = ingest.RejectedDetection
	// QuarantineReport is a snapshot of the quarantine ledger.
	QuarantineReport = ingest.QuarantineReport
)

// Checkpoint envelope identity: bytes whose format/version do not match
// are refused before any state is touched.
const (
	// CheckpointFormat is the magic format string of the envelope.
	CheckpointFormat = checkpoint.Format
	// CheckpointVersion is the envelope version this build writes and
	// accepts.
	CheckpointVersion = checkpoint.Version
)

// Quarantine reject reasons (Ingestor.Quarantine().Counts keys).
const (
	// RejectNonFiniteGeometry: a detection rect contained NaN or ±Inf.
	RejectNonFiniteGeometry = ingest.ReasonNonFiniteGeometry
	// RejectNonPositiveSize: a detection rect had width or height <= 0.
	RejectNonPositiveSize = ingest.ReasonNonPositiveSize
	// RejectNonFiniteObservation: an appearance vector contained NaN or
	// ±Inf.
	RejectNonFiniteObservation = ingest.ReasonNonFiniteObservation
	// RejectFrameMismatch: a detection's frame differs from the frame it
	// was pushed with.
	RejectFrameMismatch = ingest.ReasonFrameMismatch
	// RejectFrameRegressed: a frame arrived behind the forward-only
	// cursor.
	RejectFrameRegressed = ingest.ReasonFrameRegressed
	// RejectFrameDuplicate: a frame index was pushed twice.
	RejectFrameDuplicate = ingest.ReasonFrameDuplicate
)

// DefaultQuarantineCap bounds the dead-letter buffer when IngestConfig
// does not choose a cap.
const DefaultQuarantineCap = ingest.DefaultQuarantineCap

// RestoreIngestor reconstructs a streaming session from bytes produced
// by Ingestor.Checkpoint. The supplied engine, oracle, and configuration
// must assemble a pipeline equivalent to the checkpointed one; mismatches
// and corrupt bytes are rejected with descriptive errors.
func RestoreIngestor(engine *TrackerEngine, oracle *Oracle, cfg IngestConfig, data []byte) (*Ingestor, error) {
	return ingest.Restore(engine, oracle, cfg, data)
}

// Streaming incremental query engine (packages core, trackdb, query,
// ingest). The merger journals every identity merge as an ordered event;
// a LiveView materialises track metadata from per-window extensions plus
// those events; incremental operators fold view changes into standing
// query answers, emitting asserts and retractions instead of recomputing
// from scratch. Subscribe standing queries on an Ingestor to receive
// per-window deltas.
type (
	// MergeEvent is one entry in the merger's ordered, replayable
	// journal: the pair that merged, the canonical groups each side
	// belonged to beforehand, and the surviving canonical identity.
	MergeEvent = core.MergeEvent
	// LiveView is an incrementally maintained materialisation of the
	// merged track metadata — the streaming counterpart of a TrackStore
	// built after the fact.
	LiveView = trackdb.LiveView
	// LiveViewState is a LiveView snapshot for checkpointing.
	LiveViewState = trackdb.ViewState
	// TrackView is the read interface incremental operators query;
	// LiveView implements it.
	TrackView = query.TrackView
	// IncrementalOperator is a standing query maintained under
	// streaming updates: Apply folds view changes into the answer and
	// returns the resulting deltas.
	IncrementalOperator = query.Incremental
	// QueryDelta is one incremental answer change: an asserted or
	// retracted result row.
	QueryDelta = query.Delta
	// QueryDeltaKind distinguishes asserts from retractions.
	QueryDeltaKind = query.DeltaKind
	// OperatorState is an incremental operator snapshot for
	// checkpointing.
	OperatorState = query.OperatorState
	// OperatorStats counts the predicate work an operator performed.
	OperatorStats = query.OpStats
	// WindowQueryDeltas carries one subscription's deltas for one
	// committed window.
	WindowQueryDeltas = ingest.QueryDeltas
)

// Delta kinds emitted by incremental operators.
const (
	// DeltaAssert marks a row entering the answer.
	DeltaAssert = query.Assert
	// DeltaRetract marks a row leaving the answer — typically because a
	// merge coalesced the identities it was built from.
	DeltaRetract = query.Retract
)

// NewLiveView returns an empty live track view at event cursor zero.
func NewLiveView() *LiveView { return trackdb.NewLiveView() }

// RestoreLiveView rebuilds a live view from a snapshot, rejecting
// corrupt or inconsistent state.
func RestoreLiveView(st LiveViewState) (*LiveView, error) { return trackdb.RestoreView(st) }

// NewIncCount returns an incremental operator maintaining q's answer.
func NewIncCount(q CountQuery) IncrementalOperator { return query.NewIncCount(q) }

// NewIncRegion returns an incremental operator maintaining q's answer.
func NewIncRegion(q RegionQuery) IncrementalOperator { return query.NewIncRegion(q) }

// NewIncCoOccur returns an incremental operator maintaining q's answer.
// It panics like CoOccurQuery.Answer when q is malformed.
func NewIncCoOccur(q CoOccurQuery) IncrementalOperator { return query.NewIncCoOccur(q) }

// NewIncPrecedes returns an incremental operator maintaining q's answer.
func NewIncPrecedes(q PrecedesQuery) IncrementalOperator { return query.NewIncPrecedes(q) }

// HistoricalAnswer evaluates a freshly constructed incremental operator
// against a time-travel view (Ingestor.AsOf / StreamManager.AsOf) and
// returns the query's result rows at that cut — equal to the batch
// answer over the merged tracks at the moment the cut's window closed.
func HistoricalAnswer(v TrackView, op IncrementalOperator) [][]TrackID {
	return query.HistoricalAnswer(v, op)
}

// WriteMergeEventLog writes a merge-event journal as line-delimited
// JSON, one event per line.
func WriteMergeEventLog(w io.Writer, events []MergeEvent) error {
	return core.WriteEventLog(w, events)
}

// ReadMergeEventLog decodes a journal written by WriteMergeEventLog,
// rejecting malformed lines, invalid events, and sequence gaps.
func ReadMergeEventLog(r io.Reader) ([]MergeEvent, error) { return core.ReadEventLog(r) }

// ReplayMergeEvents reconstructs a merger from a complete event journal,
// validating every event against the evolving group structure.
func ReplayMergeEvents(events []MergeEvent) (*Merger, error) { return core.ReplayEvents(events) }

// Multi-stream serving (package serve). A StreamManager owns N per-stream
// ingestion sessions sharded across a bounded shared worker pool — the
// substrate a tmerged deployment multiplexes camera streams over.
// Admission control bounds the fleet, backpressure bounds each stream,
// and a supervisor recovers crashed streams from their latest periodic
// checkpoint with bit-identical resumption (DESIGN.md §12).
type (
	// StreamManager schedules registered streams over a shared worker
	// pool with admission control, backpressure, crash supervision, and
	// drain-to-checkpoint shutdown.
	StreamManager = serve.Manager
	// StreamManagerConfig parameterises a StreamManager.
	StreamManagerConfig = serve.Config
	// StreamSpec registers one stream with a StreamManager.
	StreamSpec = serve.StreamSpec
	// StreamPipelineFactory builds one stream's fully isolated
	// tracker-engine/oracle pipeline; called at admission and again at
	// every crash recovery.
	StreamPipelineFactory = serve.PipelineFactory
	// StreamHealth is a stream's supervision state.
	StreamHealth = serve.Health
	// ServeStreamStatus is one stream's health snapshot, the unit of
	// StreamManager.Snapshot.
	ServeStreamStatus = serve.StreamStatus
	// StreamHistoryRoot gives a StreamManager a per-stream history
	// directory tree (StreamManagerConfig.History): each registered
	// stream journals under <Dir>/<stream id> and serves time travel via
	// StreamManager.AsOf (DESIGN.md §16).
	StreamHistoryRoot = serve.HistoryRoot
)

// Stream supervision states, in escalation order.
const (
	// StreamPending awaits admission under the window budget.
	StreamPending = serve.Pending
	// StreamHealthy is schedulable and processing normally.
	StreamHealthy = serve.Healthy
	// StreamDegraded is schedulable but selecting on the spatial prior.
	StreamDegraded = serve.Degraded
	// StreamQuarantined awaits (or failed) crash recovery.
	StreamQuarantined = serve.Quarantined
	// StreamRecovering is being restored from checkpoint.
	StreamRecovering = serve.Recovering
	// StreamStopped finished processing.
	StreamStopped = serve.Stopped
)

// Typed serving-layer errors; match with errors.Is.
var (
	// ErrServeOverloaded reports a shed Push: the stream's bounded frame
	// queue is full and the manager is configured to shed rather than
	// block. Over the network ingress this surfaces as HTTP 429 with a
	// Retry-After hint.
	ErrServeOverloaded = serve.ErrOverloaded
	// ErrServeAdmission reports a rejected registration: admitting the
	// stream would exceed the aggregate in-flight window budget (HTTP
	// 503 over ingress).
	ErrServeAdmission = serve.ErrAdmission
	// ErrServeNotAdmitted reports an operation on a stream still parked
	// in the admission queue.
	ErrServeNotAdmitted = serve.ErrNotAdmitted
	// ErrServeStopped reports an operation against a shut-down manager.
	ErrServeStopped = serve.ErrStopped
	// ErrServeDraining reports a Push or Register against a manager that
	// has begun a Drain: intake is closed while queued frames flush to a
	// final checkpoint (HTTP 503 over ingress).
	ErrServeDraining = serve.ErrDraining
	// ErrServeStreamClosed reports a Push or Finish against a stream
	// whose input was already closed.
	ErrServeStreamClosed = serve.ErrStreamClosed
	// ErrServeUnknownStream reports an operation naming no registered
	// stream.
	ErrServeUnknownStream = serve.ErrUnknownStream
	// ErrServeDuplicateStream reports a registration reusing a live
	// stream ID.
	ErrServeDuplicateStream = serve.ErrDuplicateStream
)

// NewStreamManager returns a StreamManager; zero-valued config fields
// take documented defaults. Shut it down with Shutdown (abandons
// in-flight work) or Drain (flushes every stream to a final checkpoint).
func NewStreamManager(cfg StreamManagerConfig) *StreamManager { return serve.NewManager(cfg) }

// Network ingress (package ingress). The tmerged daemon's HTTP/1.1 +
// NDJSON frame-push boundary over a StreamManager, and a retrying client
// speaking it. Delivery is at-least-once made effectively exactly-once:
// per-stream sequence numbers, a server-side high-water mark, and
// idempotent duplicate discard. Backpressure and admission surface as
// protocol (429 + Retry-After, 503, typed JSON error bodies); SIGTERM in
// tmerged drains every stream to a checkpoint a restarted daemon resumes
// from with bit-identical results (DESIGN.md §13).
type (
	// IngressServer handles the frame-push protocol over a
	// StreamManager; mount Handler on an http.Server.
	IngressServer = ingress.Server
	// IngressServerConfig parameterises an IngressServer.
	IngressServerConfig = ingress.ServerConfig
	// IngressSpecFunc builds each registered stream's pipeline spec from
	// the wire-level registration knobs.
	IngressSpecFunc = ingress.SpecFunc
	// IngressClient is the retrying frame-push client: per-request
	// deadlines, exponential backoff with deterministic seeded jitter,
	// Retry-After honoured, reattach-on-404 after a daemon restart.
	// Every blocking method takes a context.Context that bounds the
	// whole retry loop (per-request deadlines still apply within it).
	IngressClient = ingress.Client
	// IngressClientConfig parameterises an IngressClient.
	IngressClientConfig = ingress.ClientConfig
	// IngressClientStats counts the client's retries, throttles, and
	// reattaches.
	IngressClientStats = ingress.ClientStats
	// IngressRegisterRequest opens (or re-attaches to) a stream.
	IngressRegisterRequest = ingress.RegisterRequest
	// IngressRegisterResponse reports the stream's cursor and resume
	// state.
	IngressRegisterResponse = ingress.RegisterResponse
	// IngressPushRecord is one NDJSON push line: a sequenced frame.
	IngressPushRecord = ingress.PushRecord
	// IngressPushResponse acks the sequence high-water mark.
	IngressPushResponse = ingress.PushResponse
	// IngressFinishResponse carries a finished stream's fingerprint and
	// window counts.
	IngressFinishResponse = ingress.FinishResponse
	// IngressStreamStatus is one stream's wire-level status row.
	IngressStreamStatus = ingress.StreamStatus
	// IngressStatusResponse is the daemon-wide status document.
	IngressStatusResponse = ingress.StatusResponse
	// IngressErrorBody is the typed JSON error body of every non-2xx
	// response.
	IngressErrorBody = ingress.ErrorBody
	// CheckpointStore persists drained stream checkpoints across daemon
	// incarnations.
	CheckpointStore = ingress.Store
	// MemCheckpointStore is an in-memory CheckpointStore (tests,
	// single-incarnation runs).
	MemCheckpointStore = ingress.MemStore
	// DirCheckpointStore is a directory-backed CheckpointStore with
	// atomic writes.
	DirCheckpointStore = ingress.DirStore
)

// NewIngressServer returns an IngressServer over cfg.Serve's manager.
func NewIngressServer(cfg IngressServerConfig) (*IngressServer, error) { return ingress.NewServer(cfg) }

// NewIngressClient returns a retrying frame-push client for one stream.
func NewIngressClient(cfg IngressClientConfig) (*IngressClient, error) { return ingress.NewClient(cfg) }

// NewMemCheckpointStore returns an empty in-memory checkpoint store.
func NewMemCheckpointStore() *MemCheckpointStore { return ingress.NewMemStore() }

// NewDirCheckpointStore returns a checkpoint store rooted at dir,
// creating it if absent; writes are atomic (temp file + rename).
func NewDirCheckpointStore(dir string) (*DirCheckpointStore, error) { return ingress.NewDirStore(dir) }
