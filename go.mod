module github.com/tmerge/tmerge

go 1.22
