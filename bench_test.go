package tmerge

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (§V), each running the corresponding experiment
// on one video per dataset and reporting the headline quantity as a
// custom metric, plus the ablation benchmarks DESIGN.md §5 calls out and
// micro-benchmarks of the hot paths. Regenerate full-size tables with
// cmd/benchrunner.

import (
	"io"
	"sync"
	"testing"

	"github.com/tmerge/tmerge/internal/bench"
	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/dataset"
	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/motmetrics"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/track"
	"github.com/tmerge/tmerge/internal/video"
	"github.com/tmerge/tmerge/internal/xrand"
)

var (
	suiteOnce sync.Once
	suite     *bench.Suite
)

// benchSuite returns the shared one-video-per-dataset suite.
func benchSuite() *bench.Suite {
	suiteOnce.Do(func() {
		suite = bench.NewSuite(42)
		suite.VideosPerDataset = 1
		suite.Trials = 1
	})
	return suite
}

func BenchmarkFig3RecK(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		out := s.Fig3(io.Discard)
		b.ReportMetric(out["mot17"][3].REC, "REC@K=0.05")
	}
}

func BenchmarkFig4BaselineScaling(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows := s.Fig4(io.Discard)
		last := rows[len(rows)-1]
		b.ReportMetric(last.Runtime.Seconds(), "modeled-s@max-len")
		b.ReportMetric(float64(last.Pairs), "pairs@max-len")
	}
}

func BenchmarkTable2Methods(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		out := s.Table2(io.Discard)
		if fps, ok := out["TMerge"][0.80]; ok {
			b.ReportMetric(fps, "TMerge-FPS@0.80")
		}
		if fps, ok := out["PS"][0.80]; ok {
			b.ReportMetric(fps, "PS-FPS@0.80")
		}
	}
}

func BenchmarkFig5RecFPS(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		out := s.Fig5(io.Discard)
		for _, c := range out["mot17"] {
			if c.Name == "TMerge" {
				b.ReportMetric(c.Points[len(c.Points)-1].REC, "TMerge-REC@max-tau")
			}
		}
	}
}

func BenchmarkFig6Batched(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		out := s.Fig6(io.Discard)
		for _, c := range out["mot17"][100] {
			if c.Name == "TMerge-B" {
				b.ReportMetric(c.Points[len(c.Points)-1].FPS, "TMergeB100-FPS@max-tau")
			}
		}
	}
}

func BenchmarkFig7TauSweep(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows, blRuntime := s.Fig7(io.Discard)
		b.ReportMetric(rows[len(rows)-1].REC, "REC@max-tau")
		b.ReportMetric(blRuntime.Seconds(), "BLB-modeled-s")
	}
}

func BenchmarkFig8Ablation(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		curves := s.Fig8(io.Discard)
		for _, c := range curves {
			if c.Name == "TMerge w/o BetaInit" {
				b.ReportMetric(c.Points[0].REC, "noBetaInit-REC@min-tau")
			}
		}
	}
}

func BenchmarkFig9WindowSweep(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		out := s.Fig9(io.Discard)
		b.ReportMetric(out["TMerge"][1].REC, "TMerge-REC@L=2000")
	}
}

func BenchmarkFig10ThrSweep(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		curves := s.Fig10(io.Discard)
		b.ReportMetric(curves[2].Points[len(curves[2].Points)-1].REC, "thr200-REC@max-tau")
	}
}

func BenchmarkFig11Trackers(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows := s.Fig11(io.Discard)
		for _, r := range rows {
			if r.Tracker == "Tracktor" && r.ResidualRate > 0 {
				b.ReportMetric(r.Rate/r.ResidualRate, "Tracktor-rate-reduction")
			}
		}
	}
}

func BenchmarkFig12MOTMetrics(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		r := s.Fig12(io.Discard)
		b.ReportMetric(r.After.IDF1-r.Before.IDF1, "IDF1-gain")
	}
}

func BenchmarkFig13Queries(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		r := s.Fig13(io.Discard)
		b.ReportMetric(r.CountAfter-r.CountBefore, "Count-recall-gain")
		b.ReportMetric(r.CoOccurAfter-r.CoOccurBefore, "CoOccur-recall-gain")
	}
}

func BenchmarkPearsonCorrelation(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		out := s.Pearson(io.Discard)
		b.ReportMetric(out[0].Spatial, "mot17-spatial-corr")
	}
}

// --- Ablation benchmarks (DESIGN.md §5) ---

// benchPairSet builds the mot17 whole-video pair universe once.
var (
	pairSetOnce sync.Once
	benchPS     *video.PairSet
	benchTruth  map[video.PairKey]bool
	benchModel  *reid.Model
)

func benchFixture(b *testing.B) (*video.PairSet, map[video.PairKey]bool, *reid.Model) {
	b.Helper()
	pairSetOnce.Do(func() {
		s := benchSuite()
		ds := s.Dataset("mot17")
		ts := s.Tracks("mot17", track.Tracktor(), 0)
		w := video.Window{Start: 0, End: video.FrameIndex(ds.Videos[0].NumFrames - 1)}
		benchPS = video.BuildPairSet(w, ts.Sorted(), nil)
		benchTruth = motmetrics.PolyonymousPairs(benchPS)
		benchModel = s.Model()
	})
	return benchPS, benchTruth, benchModel
}

// BenchmarkAblationFeatureCache measures the paper's feature-reuse
// optimisation: TMerge with the cache off re-extracts embeddings every
// iteration.
func BenchmarkAblationFeatureCache(b *testing.B) {
	ps, _, model := benchFixture(b)
	for _, on := range []bool{true, false} {
		name := "cache-on"
		if !on {
			name = "cache-off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				oracle := reid.NewOracle(model, device.NewCPU(device.DefaultCPU))
				oracle.SetCacheEnabled(on)
				cfg := core.DefaultTMergeConfig(5)
				cfg.TauMax = 5000
				core.NewTMerge(cfg).Select(ps, oracle, 0.05)
				b.ReportMetric(float64(oracle.Stats().Extractions), "extractions")
				b.ReportMetric(oracle.Device().Clock().Elapsed().Seconds(), "modeled-s")
			}
		})
	}
}

// BenchmarkAblationBatchSize sweeps the accelerator batch size beyond the
// paper's 10/100.
func BenchmarkAblationBatchSize(b *testing.B) {
	ps, truth, model := benchFixture(b)
	for _, batch := range []int{1, 10, 100, 1000} {
		name := map[int]string{1: "B=1", 10: "B=10", 100: "B=100", 1000: "B=1000"}[batch]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				oracle := reid.NewOracle(model, device.NewAccelerator(device.DefaultAccelerator, 0))
				cfg := core.DefaultTMergeConfig(5)
				cfg.TauMax = 10000
				cfg.Batch = batch
				sel := core.NewTMerge(cfg).Select(ps, oracle, 0.05)
				b.ReportMetric(video.Recall(sel, truth), "REC")
				b.ReportMetric(oracle.Device().Clock().Elapsed().Seconds(), "modeled-s")
			}
		})
	}
}

// BenchmarkAblationPosterior compares the paper's Bernoulli/Beta posterior
// against the direct Gaussian posterior extension.
func BenchmarkAblationPosterior(b *testing.B) {
	ps, truth, model := benchFixture(b)
	for _, gaussian := range []bool{false, true} {
		name := "beta-bernoulli"
		if gaussian {
			name = "gaussian"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				oracle := reid.NewOracle(model, device.NewCPU(device.DefaultCPU))
				cfg := core.DefaultTMergeConfig(5)
				cfg.TauMax = 5000
				cfg.GaussianPosterior = gaussian
				sel := core.NewTMerge(cfg).Select(ps, oracle, 0.05)
				b.ReportMetric(video.Recall(sel, truth), "REC")
			}
		})
	}
}

// BenchmarkAblationULBRadius compares the variance-aware default radius
// against the paper's literal Hoeffding radius.
func BenchmarkAblationULBRadius(b *testing.B) {
	ps, truth, model := benchFixture(b)
	for _, hoeffding := range []bool{false, true} {
		name := "variance-aware"
		if hoeffding {
			name = "hoeffding"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				oracle := reid.NewOracle(model, device.NewCPU(device.DefaultCPU))
				cfg := core.DefaultTMergeConfig(5)
				cfg.TauMax = 20000
				cfg.ULBHoeffding = hoeffding
				tm := core.NewTMerge(cfg)
				sel := tm.Select(ps, oracle, 0.05)
				b.ReportMetric(video.Recall(sel, truth), "REC")
				b.ReportMetric(float64(tm.Diagnostics().PrunedOut), "pruned-out")
			}
		})
	}
}

// --- Micro-benchmarks of the hot paths ---

func BenchmarkReIDEmbed(b *testing.B) {
	model := reid.NewModel(7, dataset.AppearanceDim)
	r := xrand.New(1)
	obs := make([]float64, dataset.AppearanceDim)
	for i := range obs {
		obs[i] = r.Gaussian(0, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Embed(obs)
	}
}

func BenchmarkOracleCachedDistance(b *testing.B) {
	_, _, model := benchFixture(b)
	oracle := reid.NewOracle(model, device.NewCPU(device.DefaultCPU))
	r := xrand.New(1)
	mk := func(id video.BBoxID) video.BBox {
		obs := make([]float64, dataset.AppearanceDim)
		for i := range obs {
			obs[i] = r.Gaussian(0, 1)
		}
		return video.BBox{ID: id, Obs: obs}
	}
	b1, b2 := mk(1), mk(2)
	oracle.Distance(b1, b2) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oracle.Distance(b1, b2)
	}
}

func BenchmarkHungarian64(b *testing.B) {
	r := xrand.New(3)
	const n = 64
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = r.Float64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		track.Hungarian(cost)
	}
}

func BenchmarkTrackerMOT17(b *testing.B) {
	s := benchSuite()
	v := s.Dataset("mot17").Videos[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		track.Tracktor().Track(v.Detections)
	}
}

func BenchmarkTMergeSelect(b *testing.B) {
	ps, _, model := benchFixture(b)
	for i := 0; i < b.N; i++ {
		oracle := reid.NewOracle(model, device.NewCPU(device.DefaultCPU))
		cfg := core.DefaultTMergeConfig(uint64(i))
		cfg.TauMax = 2000
		core.NewTMerge(cfg).Select(ps, oracle, 0.05)
	}
}

func BenchmarkBaselineSelect(b *testing.B) {
	ps, _, model := benchFixture(b)
	for i := 0; i < b.N; i++ {
		oracle := reid.NewOracle(model, device.NewCPU(device.DefaultCPU))
		core.NewBaseline().Select(ps, oracle, 0.05)
	}
}
