package tmerge_test

// Testable examples for godoc. Everything in the library is seeded, so
// the outputs are exactly reproducible.

import (
	"fmt"

	"github.com/tmerge/tmerge"
)

// ExamplePartition shows the half-overlapping window scheme of §II: each
// frame belongs to exactly one window's first half, so every track joins
// exactly one Tc.
func ExamplePartition() {
	for _, w := range tmerge.Partition(4000, 2000) {
		fmt.Printf("window %d: frames [%d, %d], Tc covers [%d, %d]\n",
			w.Index, w.Start, w.End, w.Start, w.FirstHalfEnd())
	}
	// Output:
	// window 0: frames [0, 1999], Tc covers [0, 999]
	// window 1: frames [1000, 2999], Tc covers [1000, 1999]
	// window 2: frames [2000, 3999], Tc covers [2000, 2999]
	// window 3: frames [3000, 3999], Tc covers [3000, 3999]
}

// ExampleMerger shows transitive identity merging: confirming α~β and β~γ
// collapses all three fragments into the smallest ID.
func ExampleMerger() {
	m := tmerge.NewMerger()
	m.Merge(tmerge.MakePairKey(7, 3))
	m.Merge(tmerge.MakePairKey(7, 9))
	for _, id := range []tmerge.TrackID{3, 7, 9} {
		fmt.Printf("track %d -> identity %d\n", id, m.Canonical(id))
	}
	// Output:
	// track 3 -> identity 3
	// track 7 -> identity 3
	// track 9 -> identity 3
}

// ExampleMakePairKey shows the canonical unordered pair key.
func ExampleMakePairKey() {
	fmt.Println(tmerge.MakePairKey(9, 2))
	fmt.Println(tmerge.MakePairKey(2, 9))
	// Output:
	// (2,9)
	// (2,9)
}
