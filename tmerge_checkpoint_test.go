package tmerge_test

// Integration test of the exported durability surface: a downstream user
// streaming a video through a flaky, resiliently wrapped backend, taking
// periodic checkpoints, crashing mid-outage, and restoring — the merged
// output and every resilience counter must match a run that never
// crashed.

import (
	"encoding/json"
	"reflect"
	"testing"

	"github.com/tmerge/tmerge"
)

// faultyStack assembles the flaky-device pipeline used by both the
// reference and the crash/restore runs. Determinism across assemblies
// is the point: same seeds, same schedule, same presets.
func faultyStack() (*tmerge.Flaky, *tmerge.ResilientDevice, *tmerge.Oracle, tmerge.IngestConfig) {
	flaky := tmerge.NewFlaky(tmerge.NewCPU(tmerge.DefaultCPUCost), tmerge.FaultConfig{
		Seed:          3,
		TransientRate: 0.05,
		Schedule:      tmerge.NewFaultSchedule(tmerge.Outage{From: 400, To: 460}),
	})
	dev := tmerge.NewResilientDevice(flaky,
		tmerge.RetryPolicy{MaxAttempts: 6}, tmerge.BreakerConfig{Threshold: 20}, 9)
	oracle := tmerge.NewOracle(tmerge.NewModel(7, tmerge.AppearanceDim), dev)
	cfg := tmerge.IngestConfig{
		WindowLen: 200,
		K:         0.05,
		Algorithm: tmerge.NewTMerge(tmerge.DefaultTMergeConfig(1)),
	}
	return flaky, dev, oracle, cfg
}

func TestPublicCheckpointRestoreUnderFaults(t *testing.T) {
	v := generate(t)

	type outcome struct {
		results    []tmerge.IngestWindowResult
		mergedJSON []byte
		stats      tmerge.OracleStats
		resilience tmerge.ResilientCounters
		faults     tmerge.FaultCounters
	}
	observe := func(in *tmerge.Ingestor, dev *tmerge.ResilientDevice, flaky *tmerge.Flaky) outcome {
		merged, err := json.Marshal(in.MergedTracks().Sorted())
		if err != nil {
			t.Fatal(err)
		}
		return outcome{
			results:    in.Results(),
			mergedJSON: merged,
			stats:      in.Oracle().Stats(),
			resilience: dev.Counters(),
			faults:     flaky.Counters(),
		}
	}

	// Reference: uninterrupted streaming run over the faulty stack.
	refFlaky, refDev, refOracle, refCfg := faultyStack()
	ref, err := tmerge.NewIngestor(tmerge.Tracktor(), refOracle, refCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, dets := range v.Detections {
		ref.Push(dets)
	}
	ref.Close()
	want := observe(ref, refDev, refFlaky)

	// Crash run: auto-checkpoint every window, crash mid-stream, restore
	// from the last surviving checkpoint into a fresh stack, replay.
	var last []byte
	crashFlaky, crashDev, crashOracle, crashCfg := faultyStack()
	crashCfg.AutoCheckpointEvery = 1
	crashCfg.CheckpointSink = func(b []byte) error {
		last = append([]byte(nil), b...)
		return nil
	}
	in, err := tmerge.NewIngestor(tmerge.Tracktor(), crashOracle, crashCfg)
	if err != nil {
		t.Fatal(err)
	}
	killAt := len(v.Detections) * 2 / 3
	for f, dets := range v.Detections {
		if f == killAt {
			break
		}
		in.Push(dets)
	}
	if err := in.CheckpointErr(); err != nil {
		t.Fatal(err)
	}
	if last == nil {
		t.Fatal("no checkpoint survived the crash")
	}
	_, _ = crashFlaky, crashDev // the crashed stack dies with the process

	resFlaky, resDev, resOracle, resCfg := faultyStack()
	resumed, err := tmerge.RestoreIngestor(tmerge.Tracktor(), resOracle, resCfg, last)
	if err != nil {
		t.Fatal(err)
	}
	from := resumed.FramesSeen()
	if from == 0 || from > killAt {
		t.Fatalf("restored cursor %d outside (0, %d]", from, killAt)
	}
	for _, dets := range v.Detections[from:] {
		resumed.Push(dets)
	}
	resumed.Close()
	got := observe(resumed, resDev, resFlaky)

	if !reflect.DeepEqual(want.results, got.results) {
		t.Error("window results diverged after crash/restore")
	}
	if string(want.mergedJSON) != string(got.mergedJSON) {
		t.Error("merged tracks diverged after crash/restore")
	}
	if want.stats != got.stats {
		t.Errorf("oracle stats diverged: %+v vs %+v", want.stats, got.stats)
	}
	if want.resilience != got.resilience {
		t.Errorf("resilience counters diverged: %+v vs %+v", want.resilience, got.resilience)
	}
	if want.faults != got.faults {
		t.Errorf("fault counters diverged: %+v vs %+v", want.faults, got.faults)
	}
	// The scripted outage actually fired somewhere in the combined run.
	if got.faults.Outages == 0 {
		t.Error("scripted outage never fired; fixture is not exercising the fault path")
	}

	// A checkpoint is refused by a differently assembled pipeline.
	_, _, otherOracle, otherCfg := faultyStack()
	otherCfg.K = 0.1
	if _, err := tmerge.RestoreIngestor(tmerge.Tracktor(), otherOracle, otherCfg, last); err == nil {
		t.Error("checkpoint accepted by a pipeline with different K")
	}
}
