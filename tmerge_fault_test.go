package tmerge_test

// Integration test of the exported fault-tolerance surface: a downstream
// user wiring a flaky backend behind the resilient wrapper and running
// the pipeline through an outage.

import (
	"errors"
	"testing"

	"github.com/tmerge/tmerge"
)

func TestPublicFaultToleranceSurface(t *testing.T) {
	v := generate(t)
	tracks := tmerge.Tracktor().Track(v.Detections)

	// A modest transient rate under a generous attempt budget: TMerge
	// issues thousands of small submissions per run, so the budget must
	// make per-submission exhaustion vanishingly unlikely for the faults
	// to be fully masked.
	flaky := tmerge.NewFlaky(tmerge.NewCPU(tmerge.DefaultCPUCost), tmerge.FaultConfig{
		Seed:          3,
		TransientRate: 0.1,
	})
	dev := tmerge.NewResilientDevice(flaky,
		tmerge.RetryPolicy{MaxAttempts: 6}, tmerge.BreakerConfig{Threshold: 20}, 9)
	oracle := tmerge.NewOracle(tmerge.NewModel(7, tmerge.AppearanceDim), dev)

	res, err := tmerge.TryRunPipeline(tracks, v.NumFrames, oracle, tmerge.PipelineConfig{
		K:         0.05,
		Algorithm: tmerge.NewTMerge(tmerge.DefaultTMergeConfig(1)),
		Verify:    true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The transients are fully masked: no degraded windows, and the
	// counters show the masking happened.
	if res.DegradedWindows != 0 {
		t.Errorf("DegradedWindows = %d under retryable transients", res.DegradedWindows)
	}
	rc := res.Resilience
	if rc.Submissions == 0 || rc.Attempts <= rc.Submissions {
		t.Errorf("no retries recorded: %+v", rc)
	}
	if rc.Failures != flaky.Counters().Transients {
		t.Errorf("resilient failures %d != injected transients %d", rc.Failures, flaky.Counters().Transients)
	}
	if dev.State() != tmerge.BreakerClosed {
		t.Errorf("breaker state = %v, want closed", dev.State())
	}

	// Fault-free reference: masked transients must not change selections.
	ref := tmerge.RunPipeline(tracks, v.NumFrames,
		tmerge.NewOracle(tmerge.NewModel(7, tmerge.AppearanceDim), tmerge.NewCPU(tmerge.DefaultCPUCost)),
		tmerge.PipelineConfig{
			K:         0.05,
			Algorithm: tmerge.NewTMerge(tmerge.DefaultTMergeConfig(1)),
			Verify:    true,
		})
	if res.REC != ref.REC {
		t.Errorf("REC diverged under masked transients: %v vs %v", res.REC, ref.REC)
	}

	// Validation errors surface through TryRunPipeline.
	if _, err := tmerge.TryRunPipeline(tracks, v.NumFrames, oracle, tmerge.PipelineConfig{
		WindowLen: 31, K: 0.05, Algorithm: tmerge.NewBaseline(),
	}); err == nil {
		t.Error("odd window length accepted")
	}
}

func TestPublicScheduledOutageDegrades(t *testing.T) {
	v := generate(t)
	tracks := tmerge.Tracktor().Track(v.Detections)

	// Every submission fails: the single (whole-video) window degrades to
	// the spatial prior and the error classification is visible.
	flaky := tmerge.NewFlaky(tmerge.NewCPU(tmerge.DefaultCPUCost), tmerge.FaultConfig{
		Schedule: tmerge.NewFaultSchedule(tmerge.Outage{From: 0, To: 1 << 40}),
	})
	dev := tmerge.NewResilientDevice(flaky, tmerge.RetryPolicy{MaxAttempts: 2},
		tmerge.BreakerConfig{Threshold: 2}, 9)
	oracle := tmerge.NewOracle(tmerge.NewModel(7, tmerge.AppearanceDim), dev)

	res, err := tmerge.TryRunPipeline(tracks, v.NumFrames, oracle, tmerge.PipelineConfig{
		K:         0.05,
		Algorithm: tmerge.NewTMerge(tmerge.DefaultTMergeConfig(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DegradedWindows != len(res.Windows) {
		t.Errorf("degraded %d of %d windows under total outage", res.DegradedWindows, len(res.Windows))
	}
	for _, w := range res.Windows {
		if len(w.Selected) == 0 {
			t.Errorf("window %d selected nothing in degraded mode", w.Window.Index)
		}
	}

	// The fallible path classifies the failure.
	err = dev.TrySubmit(0, 1, nil)
	if !errors.Is(err, tmerge.ErrDeviceUnavailable) {
		t.Errorf("TrySubmit error %v does not wrap ErrDeviceUnavailable", err)
	}
	// Either the outage cause or a breaker rejection is acceptable here,
	// depending on breaker state; reset it to force a real probe.
	dev.ResetBreaker()
	err = dev.TrySubmit(0, 1, nil)
	if !errors.Is(err, tmerge.ErrFaultOutage) {
		t.Errorf("TrySubmit error %v does not wrap ErrFaultOutage", err)
	}
}
